"""Optimizer-strategy shoot-out: power vs evaluations per strategy.

The :mod:`repro.optimize` registry turns the MP phase-assignment search
into a benchmarkable axis; this bench runs every registered strategy on
the same seeded circuits and reports the two numbers that matter —
final power and how many evaluator calls it took — plus the same
comparison under a fixed shared :class:`~repro.optimize.OptimizerBudget`
(do cleverer strategies win when evaluations are scarce?).
"""

import pytest

from repro.bench.generators import GeneratorConfig, random_control_network
from repro.network.ops import cleanup, to_aoi
from repro.optimize import OptimizerBudget, make_strategy, strategy_names
from repro.power.estimator import PhaseEvaluator

from conftest import print_block, record_bench

#: Params keeping exponential strategies tractable at bench sizes.
_BENCH_PARAMS = {
    "pairwise": {"exhaustive_limit": 0},  # force the paper's loop
    "anneal": {"steps": 128},
}


def _evaluator(seed: int, n_outputs: int = 7) -> PhaseEvaluator:
    cfg = GeneratorConfig(
        n_inputs=14, n_outputs=n_outputs, n_gates=50, seed=seed, support_size=10
    )
    net = cleanup(to_aoi(random_control_network(f"opt{seed}", cfg)))
    return PhaseEvaluator(net, method="bdd")


def _strategies():
    return [
        (name, make_strategy(name, **_BENCH_PARAMS.get(name, {})))
        for name in strategy_names()
    ]


@pytest.mark.benchmark(group="optimizers")
def bench_power_vs_evaluations(benchmark):
    """Unbudgeted: each strategy's natural power/evaluations trade-off."""
    evaluators = [_evaluator(seed) for seed in range(4)]
    strategies = _strategies()

    def run():
        table = {}
        for name, strategy in strategies:
            powers, evals = [], []
            for ev in evaluators:
                result = strategy.optimize(ev, seed=0)
                powers.append(result.power)
                evals.append(result.evaluations)
            table[name] = (
                sum(powers) / len(powers),
                sum(evals) / len(evals),
            )
        return table

    table = benchmark(run)
    optimum = table["exhaustive"][0]
    body = f"{'strategy':<12} {'avg power':>10} {'avg evals':>10} {'vs opt':>8}\n"
    body += "\n".join(
        f"{name:<12} {power:>10.3f} {evals:>10.1f} "
        f"{100.0 * (power - optimum) / optimum:>7.1f}%"
        for name, (power, evals) in sorted(table.items(), key=lambda kv: kv[1][0])
    )
    print_block("Power vs evaluations per registered strategy (7 outputs)", body)
    for name, (power, evals) in sorted(table.items()):
        record_bench(
            "optimizers",
            {
                "mode": "unbudgeted",
                "strategy": name,
                "avg_power": round(power, 4),
                "avg_evals": round(evals, 1),
                "vs_optimal_pct": round(100.0 * (power - optimum) / optimum, 2),
            },
        )

    # Exhaustive is the global optimum; nothing may beat it.
    assert all(power >= optimum - 1e-9 for power, _ in table.values())
    # The paper's heuristic must stay within 10% of optimal at a
    # fraction of the evaluations.
    pw_power, pw_evals = table["pairwise"]
    assert pw_power <= optimum * 1.10 + 1e-9
    assert pw_evals < table["exhaustive"][1]


@pytest.mark.benchmark(group="optimizers")
def bench_fixed_budget(benchmark):
    """Budgeted: every strategy gets the same 24-evaluation allowance."""
    budget = OptimizerBudget(max_evaluations=24)
    evaluators = [_evaluator(seed + 50, n_outputs=9) for seed in range(4)]
    strategies = _strategies()

    def run():
        table = {}
        for name, strategy in strategies:
            powers, evals = [], []
            for ev in evaluators:
                result = strategy.optimize(ev, budget=budget, seed=0)
                powers.append(result.power / result.initial_power)
                evals.append(result.evaluations)
            table[name] = (sum(powers) / len(powers), max(evals))
        return table

    table = benchmark(run)
    body = f"{'strategy':<12} {'power/start':>12} {'max evals':>10}\n"
    body += "\n".join(
        f"{name:<12} {ratio:>12.4f} {evals:>10}"
        for name, (ratio, evals) in sorted(table.items(), key=lambda kv: kv[1][0])
    )
    print_block("Equal 24-evaluation budget (9 outputs)", body)
    for name, (ratio, evals) in sorted(table.items()):
        record_bench(
            "optimizers",
            {
                "mode": "budget24",
                "strategy": name,
                "power_vs_start": round(ratio, 4),
                "max_evals": evals,
            },
        )

    for name, (ratio, evals) in table.items():
        assert evals <= 24, f"{name} overspent its budget ({evals})"
        assert ratio <= 1.0 + 1e-9, f"{name} regressed past its start"
