"""Property 2.2 — domino gates never glitch; static CMOS does.

Paper claim: "since domino gates never glitch, the switching activity
can be modeled correctly under a zero delay assumption."  This bench
measures the glitch activity a *static* implementation of the suite
circuits would pay under a unit-delay model, and verifies every domino
implementation evaluates monotonically (zero glitches, zero-delay
exact).
"""

import pytest

from repro.bench.mcnc import spec_by_name
from repro.network.duplication import phase_transform
from repro.network.ops import cleanup, to_aoi
from repro.phase import PhaseAssignment
from repro.power.glitch import domino_glitch_check, unit_delay_glitch_report

from conftest import print_block


@pytest.mark.benchmark(group="property22")
@pytest.mark.parametrize("circuit", ["frg1", "apex7"])
def bench_static_glitch_activity(benchmark, circuit):
    net = cleanup(to_aoi(spec_by_name(circuit).build()))
    report = benchmark.pedantic(
        unit_delay_glitch_report,
        kwargs=dict(network=net, n_cycles=1024, seed=0),
        rounds=1,
        iterations=1,
    )
    body = (
        f"zero-delay transitions/cycle : {report.zero_delay_transitions:.1f}\n"
        f"unit-delay transitions/cycle : {report.unit_delay_transitions:.1f}\n"
        f"glitch transitions/cycle     : {report.glitch_transitions:.1f}\n"
        f"glitch fraction              : {report.glitch_fraction * 100:.1f}%"
    )
    print_block(f"Static glitch activity on {circuit}", body)
    # Multi-level reconvergent control logic glitches in static CMOS.
    assert report.unit_delay_transitions >= report.zero_delay_transitions


@pytest.mark.benchmark(group="property22")
def bench_domino_never_glitches(benchmark):
    net = cleanup(to_aoi(spec_by_name("frg1").build()))
    impl = phase_transform(net, PhaseAssignment.all_positive(net.output_names()))

    ok = benchmark.pedantic(
        domino_glitch_check,
        kwargs=dict(impl=impl, n_cycles=512, seed=0),
        rounds=1,
        iterations=1,
    )
    print_block(
        "Domino monotonicity check (frg1)",
        f"monotone evaluation, zero glitches: {ok}",
    )
    assert ok
