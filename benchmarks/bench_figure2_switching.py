"""Figure 2 — switching vs signal probability for domino and static gates.

Paper claim: a domino gate's switching probability is exactly its
signal probability (S = p), while a static gate switches 2p(1-p); the
curves cross, and above p = 0.5 domino gates switch strictly more.
"""

import pytest

from repro.experiments.figure2 import format_figure2, run_figure2

from conftest import print_block


@pytest.mark.benchmark(group="figure2")
def bench_figure2_curves(benchmark):
    points = benchmark(run_figure2, None, 16384, 0)
    print_block("Figure 2 (paper: domino S=p, static S=2p(1-p))", format_figure2(points))

    for pt in points:
        assert pt.domino_measured == pytest.approx(pt.domino_analytic, abs=0.02)
        assert pt.static_measured == pytest.approx(pt.static_analytic, abs=0.02)
    above_half = [pt for pt in points if pt.signal_probability > 0.55]
    assert all(pt.domino_analytic > pt.static_analytic for pt in above_half)
