"""Figure 10 — BDD variable ordering comparison.

Paper claim (on its sketch): the reverse-topological "domino" ordering
needs 7 BDD nodes, the plain topological ordering 11, a disturbed
ordering 9.  Shape: domino <= disturbed <= topological, and the gap
widens on real convergent control circuits.
"""

import pytest

from repro.bdd.builder import compare_orderings
from repro.bench.mcnc import spec_by_name
from repro.experiments.figure10 import format_figure10, run_figure10
from repro.network.ops import cleanup, to_aoi

from conftest import print_block


@pytest.mark.benchmark(group="figure10")
def bench_figure10_example(benchmark):
    results = benchmark(run_figure10)
    print_block("Figure 10 (paper: 7 / 11 / 9 nodes)", format_figure10(results))
    fig = next(r for r in results if r.circuit == "figure10")
    c = fig.node_counts
    assert c["domino"] <= c["disturbed"] <= c["topological"]


@pytest.mark.benchmark(group="figure10")
@pytest.mark.parametrize("circuit", ["frg1", "apex7", "x1"])
def bench_ordering_on_suite_circuit(benchmark, circuit):
    net = cleanup(to_aoi(spec_by_name(circuit).build()))
    counts = benchmark(
        compare_orderings, net, None, ("domino", "topological", "disturbed"), 4_000_000
    )
    body = "\n".join(f"{k:<12} {v}" for k, v in counts.items())
    print_block(f"BDD node counts on {circuit}", body)
    # On realistic convergent circuits the domino ordering must not lose
    # to the naive topological one.
    assert counts["domino"] <= counts["topological"]
