#!/usr/bin/env python
"""Gate CI on benchmark wall-clock trajectories.

``record_bench`` (see ``conftest.py``) appends one timestamped entry
per run to ``BENCH_<name>.json``, so each file holds the performance
history of a benchmark across commits.  This script reads every
trajectory, groups entries into *series* (the string-valued keys other
than ``recorded_at`` — ``kernel=...``, ``circuit=...`` — identify what
was measured), and compares the newest entry of each series against
the **best** earlier entry: comparing against the best rather than the
immediately previous run keeps a slow creep of small regressions from
ratcheting the baseline.

A series regresses when ``newest > best_prior * (1 + threshold)`` for
its timing metric (``wall_s``, else ``mean_s``; series without a
timing metric are skipped — quality metrics like ``avg_power`` have
their own asserts inside the benches).  Any regression exits 1 with a
per-series report; missing, unreadable, or hand-mangled trajectory
files are reported and skipped, never fatal — a broken file should
fail the bench that writes it, not the gate that reads it.

Usage::

    python benchmarks/check_trajectory.py                 # default 15%
    python benchmarks/check_trajectory.py --threshold 0.5 # noisy runners
    python benchmarks/check_trajectory.py --bench-dir path/to/dir
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Timing metrics, in preference order; the first one present is used.
METRICS = ("wall_s", "mean_s")

#: Default allowed slowdown vs the best prior run (15%).
DEFAULT_THRESHOLD = 0.15

SeriesKey = Tuple[Tuple[str, str], ...]


def series_key(entry: Dict[str, Any]) -> SeriesKey:
    """What this entry measured: the string-valued fields, minus the
    timestamp."""
    return tuple(
        sorted(
            (k, v)
            for k, v in entry.items()
            if isinstance(v, str) and k != "recorded_at"
        )
    )


def timing_metric(entry: Dict[str, Any]) -> Optional[Tuple[str, float]]:
    for metric in METRICS:
        value = entry.get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return metric, float(value)
    return None


def load_entries(path: Path) -> Optional[List[Dict[str, Any]]]:
    """The entry list, or None when the file is not a trajectory."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    entries = data.get("entries") if isinstance(data, dict) else None
    if not isinstance(entries, list):
        return None
    return [e for e in entries if isinstance(e, dict)]


def check_file(path: Path, threshold: float) -> Tuple[List[str], int]:
    """``(regression report lines, series checked)`` for one trajectory."""
    entries = load_entries(path)
    if entries is None:
        print(f"note: {path.name} is not a readable trajectory; skipped")
        return [], 0

    by_series: Dict[SeriesKey, List[Tuple[str, float]]] = {}
    for entry in entries:
        timing = timing_metric(entry)
        if timing is None:
            continue
        by_series.setdefault(series_key(entry), []).append(timing)

    regressions: List[str] = []
    checked = 0
    for key, timings in sorted(by_series.items()):
        if len(timings) < 2:
            continue  # first recorded run: nothing to compare against
        checked += 1
        metric, newest = timings[-1]
        best_prior = min(value for _, value in timings[:-1])
        if best_prior <= 0.0:
            continue  # degenerate timing; a ratio would be meaningless
        if newest > best_prior * (1.0 + threshold):
            label = ", ".join(f"{k}={v}" for k, v in key) or "(unlabelled)"
            regressions.append(
                f"{path.name}: {label}: {metric} {newest:.6g}s vs best "
                f"{best_prior:.6g}s "
                f"(+{(newest / best_prior - 1.0) * 100.0:.1f}%, "
                f"threshold +{threshold * 100.0:.0f}%)"
            )
    return regressions, checked


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when the newest benchmark run regresses "
        "wall-clock vs the best prior run"
    )
    parser.add_argument(
        "--bench-dir",
        default=str(Path(__file__).resolve().parent),
        help="directory holding BENCH_*.json trajectories",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional slowdown vs the best prior run "
        f"(default {DEFAULT_THRESHOLD})",
    )
    args = parser.parse_args(argv)

    bench_dir = Path(args.bench_dir)
    files = sorted(bench_dir.glob("BENCH_*.json"))
    if not files:
        print(f"note: no BENCH_*.json trajectories under {bench_dir}")
        return 0

    all_regressions: List[str] = []
    total_checked = 0
    for path in files:
        regressions, checked = check_file(path, args.threshold)
        all_regressions.extend(regressions)
        total_checked += checked

    for line in all_regressions:
        print(f"REGRESSION: {line}")
    print(
        f"{len(files)} trajectory file(s), {total_checked} series checked, "
        f"{len(all_regressions)} regression(s)"
    )
    return 1 if all_regressions else 0


if __name__ == "__main__":
    sys.exit(main())
