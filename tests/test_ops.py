"""Unit tests for repro.network.ops."""

import pytest

from repro.errors import NetworkError
from repro.network.netlist import GateType, LogicNetwork, SopCover
from repro.network.ops import (
    cleanup,
    collapse_buffers,
    count_gate_types,
    demorgan_node,
    expand_sop_nodes,
    networks_equivalent,
    propagate_constants,
    sweep_dead_nodes,
    to_aoi,
)

from helpers import all_input_vectors


def _xor_net():
    net = LogicNetwork("xor")
    net.add_input("a")
    net.add_input("b")
    net.add_gate("x", GateType.XOR, ["a", "b"])
    net.add_output("x")
    return net


class TestExpandSop:
    def test_sop_becomes_aoi(self):
        net = LogicNetwork("m")
        for pi in ("a", "b"):
            net.add_input(pi)
        cover = SopCover(cubes=["10", "01"], output_value="1")
        net.add_gate("f", GateType.SOP, ["a", "b"], cover=cover)
        net.add_output("f")
        out = expand_sop_nodes(net)
        assert all(
            n.gate_type in (GateType.AND, GateType.OR, GateType.NOT, GateType.BUF)
            for n in out.gates
        )
        assert networks_equivalent(net, out)

    def test_offset_cover_gets_inverter(self):
        net = LogicNetwork("m")
        net.add_input("a")
        cover = SopCover(cubes=["1"], output_value="0")
        net.add_gate("f", GateType.SOP, ["a"], cover=cover)
        net.add_output("f")
        out = expand_sop_nodes(net)
        assert networks_equivalent(net, out)
        assert out.nodes["f"].gate_type is GateType.NOT

    def test_empty_cover_is_constant(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_gate("f", GateType.SOP, ["a"], cover=SopCover(cubes=[], output_value="1"))
        net.add_output("f")
        out = expand_sop_nodes(net)
        assert out.nodes["f"].gate_type is GateType.CONST0

    def test_single_cube_single_literal(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_gate("f", GateType.SOP, ["a"], cover=SopCover(cubes=["1"], output_value="1"))
        net.add_output("f")
        out = expand_sop_nodes(net)
        assert networks_equivalent(net, out)


class TestToAoi:
    @pytest.mark.parametrize(
        "gate_type,n",
        [
            (GateType.NAND, 2),
            (GateType.NOR, 3),
            (GateType.XOR, 2),
            (GateType.XOR, 3),
            (GateType.XNOR, 2),
        ],
    )
    def test_lowering_preserves_function(self, gate_type, n):
        net = LogicNetwork("m")
        pis = [f"i{k}" for k in range(n)]
        for pi in pis:
            net.add_input(pi)
        net.add_gate("f", gate_type, pis)
        net.add_output("f")
        out = to_aoi(net)
        assert networks_equivalent(net, out)
        allowed = (GateType.AND, GateType.OR, GateType.NOT, GateType.BUF)
        assert all(g.gate_type in allowed for g in out.gates)

    def test_mux_lowering(self):
        net = LogicNetwork("m")
        for pi in ("s", "d0", "d1"):
            net.add_input(pi)
        net.add_gate("f", GateType.MUX, ["s", "d0", "d1"])
        net.add_output("f")
        out = to_aoi(net)
        assert networks_equivalent(net, out)

    def test_aoi_is_idempotent(self, fig3_aoi):
        again = to_aoi(fig3_aoi)
        assert networks_equivalent(fig3_aoi, again)


class TestPropagateConstants:
    def test_and_with_constant_false(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_gate("c0", GateType.CONST0, [])
        net.add_gate("g", GateType.AND, ["a", "c0"])
        net.add_output("g")
        out = propagate_constants(net)
        assert out.nodes["g"].gate_type is GateType.CONST0

    def test_or_with_constant_true(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_gate("c1", GateType.CONST1, [])
        net.add_gate("g", GateType.OR, ["a", "c1"])
        net.add_output("g")
        out = propagate_constants(net)
        assert out.nodes["g"].gate_type is GateType.CONST1

    def test_and_drops_constant_true_operand(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("c1", GateType.CONST1, [])
        net.add_gate("g", GateType.AND, ["a", "b", "c1"])
        net.add_output("g")
        out = propagate_constants(net)
        assert out.nodes["g"].fanins == ["a", "b"]

    def test_single_operand_becomes_buffer(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_gate("c1", GateType.CONST1, [])
        net.add_gate("g", GateType.AND, ["a", "c1"])
        net.add_output("g")
        out = propagate_constants(net)
        assert out.nodes["g"].gate_type is GateType.BUF

    def test_not_of_constant(self):
        net = LogicNetwork("m")
        net.add_gate("c0", GateType.CONST0, [])
        net.add_gate("g", GateType.NOT, ["c0"])
        net.add_output("g")
        out = propagate_constants(net)
        assert out.nodes["g"].gate_type is GateType.CONST1

    def test_equivalence_preserved(self, small_random):
        out = propagate_constants(small_random)
        assert networks_equivalent(small_random, out)


class TestCollapseBuffers:
    def test_double_inverter_removed(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_gate("n1", GateType.NOT, ["a"])
        net.add_gate("n2", GateType.NOT, ["n1"])
        net.add_gate("g", GateType.BUF, ["n2"])
        net.add_output("g")
        out = collapse_buffers(net)
        assert out.driver_of("g") == "a"

    def test_buffer_chain_removed(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_gate("b1", GateType.BUF, ["a"])
        net.add_gate("b2", GateType.BUF, ["b1"])
        net.add_output("f", "b2")
        out = collapse_buffers(net)
        assert out.driver_of("f") == "a"

    def test_equivalence(self, small_random):
        assert networks_equivalent(small_random, collapse_buffers(small_random))


class TestSweep:
    def test_dead_gate_removed(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_gate("dead", GateType.NOT, ["a"])
        net.add_gate("live", GateType.BUF, ["a"])
        net.add_output("live")
        out = sweep_dead_nodes(net)
        assert "dead" not in out.nodes
        assert "live" in out.nodes

    def test_inputs_always_kept(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_input("unused")
        net.add_output("f", "a")
        out = sweep_dead_nodes(net)
        assert "unused" in out.nodes
        assert out.inputs == ["a", "unused"]

    def test_latch_cone_kept(self, fig7):
        out = sweep_dead_nodes(fig7)
        assert "g2" in out.nodes  # feeds latch l1's data input


class TestDemorgan:
    def test_demorgan_preserves_function(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g", GateType.AND, ["a", "b"])
        net.add_output("g")
        ref = net.copy()
        demorgan_node(net, "g")
        assert networks_equivalent(ref, net)
        assert net.nodes["g"].gate_type is GateType.NOT

    def test_demorgan_on_or(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g", GateType.OR, ["a", "b"])
        net.add_output("g")
        ref = net.copy()
        demorgan_node(net, "g")
        assert networks_equivalent(ref, net)

    def test_demorgan_rejects_not(self, simple_and_or):
        with pytest.raises(NetworkError):
            demorgan_node(simple_and_or, "y")


class TestCleanupPipeline:
    def test_cleanup_equivalence(self, fig3):
        out = cleanup(to_aoi(fig3))
        assert networks_equivalent(fig3, out)

    def test_cleanup_removes_buffers(self, fig3):
        out = cleanup(to_aoi(fig3))
        assert all(g.gate_type is not GateType.BUF for g in out.gates)


class TestHistogram:
    def test_count_gate_types(self, simple_and_or):
        hist = count_gate_types(simple_and_or)
        assert hist[GateType.AND] == 1
        assert hist[GateType.OR] == 1
        assert hist[GateType.NOT] == 1


class TestEquivalenceChecker:
    def test_detects_difference(self):
        a = _xor_net()
        b = LogicNetwork("or")
        b.add_input("a")
        b.add_input("b")
        b.add_gate("x", GateType.OR, ["a", "b"])
        b.add_output("x")
        assert not networks_equivalent(a, b)

    def test_requires_same_interface(self):
        a = _xor_net()
        b = LogicNetwork("m")
        b.add_input("a")
        b.add_output("x", "a")
        assert not networks_equivalent(a, b)

    def test_random_sampling_path(self, medium_random):
        # 16 inputs exceeds the exhaustive limit, exercising sampling.
        assert networks_equivalent(
            medium_random, medium_random.copy(), exhaustive_limit=8
        )
