"""Unit tests for repro.phase."""

import pytest

from repro.errors import PhaseError
from repro.phase import Phase, PhaseAssignment, enumerate_assignments


class TestPhase:
    def test_flip(self):
        assert Phase.POSITIVE.flipped is Phase.NEGATIVE
        assert Phase.NEGATIVE.flipped is Phase.POSITIVE

    def test_invert_operator(self):
        assert ~Phase.POSITIVE is Phase.NEGATIVE


class TestPhaseAssignment:
    def test_all_positive(self):
        a = PhaseAssignment.all_positive(["f", "g"])
        assert a["f"] is Phase.POSITIVE
        assert a["g"] is Phase.POSITIVE

    def test_all_negative(self):
        a = PhaseAssignment.all_negative(["f"])
        assert a["f"] is Phase.NEGATIVE

    def test_unknown_output_raises(self):
        a = PhaseAssignment.all_positive(["f"])
        with pytest.raises(PhaseError):
            a["zzz"]

    def test_non_phase_value_rejected(self):
        with pytest.raises(PhaseError):
            PhaseAssignment({"f": "+"})

    def test_from_bits(self):
        a = PhaseAssignment.from_bits(["f", "g", "h"], 0b101)
        assert a["f"] is Phase.NEGATIVE
        assert a["g"] is Phase.POSITIVE
        assert a["h"] is Phase.NEGATIVE

    def test_as_bits_roundtrip(self):
        outputs = ["f", "g", "h"]
        for bits in range(8):
            a = PhaseAssignment.from_bits(outputs, bits)
            assert a.as_bits(outputs) == bits

    def test_flipped_single(self):
        a = PhaseAssignment.all_positive(["f", "g"])
        b = a.flipped("f")
        assert b["f"] is Phase.NEGATIVE
        assert b["g"] is Phase.POSITIVE
        # Original unchanged.
        assert a["f"] is Phase.POSITIVE

    def test_flipped_multiple(self):
        a = PhaseAssignment.all_positive(["f", "g"])
        b = a.flipped("f", "g")
        assert b.negative_outputs() == ["f", "g"]

    def test_flipped_unknown_raises(self):
        a = PhaseAssignment.all_positive(["f"])
        with pytest.raises(PhaseError):
            a.flipped("zzz")

    def test_with_phase(self):
        a = PhaseAssignment.all_positive(["f"])
        b = a.with_phase("f", Phase.NEGATIVE)
        assert b["f"] is Phase.NEGATIVE

    def test_with_phase_unknown_raises(self):
        a = PhaseAssignment.all_positive(["f"])
        with pytest.raises(PhaseError):
            a.with_phase("zzz", Phase.NEGATIVE)

    def test_equality_and_hash(self):
        a = PhaseAssignment.from_bits(["f", "g"], 1)
        b = PhaseAssignment.from_bits(["f", "g"], 1)
        c = PhaseAssignment.from_bits(["f", "g"], 2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_random_is_deterministic(self):
        a = PhaseAssignment.random(["f", "g", "h"], seed=3)
        b = PhaseAssignment.random(["f", "g", "h"], seed=3)
        assert a == b

    def test_positive_negative_lists(self):
        a = PhaseAssignment.from_bits(["f", "g", "h"], 0b010)
        assert a.negative_outputs() == ["g"]
        assert a.positive_outputs() == ["f", "h"]

    def test_len_and_iter(self):
        a = PhaseAssignment.all_positive(["f", "g"])
        assert len(a) == 2
        assert set(a) == {"f", "g"}


class TestEnumerate:
    def test_enumeration_count(self):
        assert len(list(enumerate_assignments(["a", "b", "c"]))) == 8

    def test_enumeration_unique(self):
        seen = set(enumerate_assignments(["a", "b"]))
        assert len(seen) == 4

    def test_empty_output_list(self):
        assignments = list(enumerate_assignments([]))
        assert len(assignments) == 1
