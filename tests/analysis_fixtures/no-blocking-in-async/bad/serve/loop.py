import time


async def poll(queue):
    time.sleep(0.1)
    return await queue.get()
