import asyncio
import time


async def poll(queue):
    await asyncio.sleep(0.1)
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, lambda: time.sleep(0.0))
