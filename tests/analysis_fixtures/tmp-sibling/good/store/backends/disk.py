import json
import os


def tmp_sibling(path):
    return path.with_name(path.name + f".tmp.{os.getpid()}")


def put(path, entry):
    tmp = tmp_sibling(path)
    with open(tmp, "w") as f:
        json.dump(entry, f)
    os.replace(tmp, path)


def sweep(root):
    return [p for p in root.glob("*.json.tmp.*")]
