import os


def tmp_sibling(path):
    return path.with_name(path.name + f".tmp.{os.getpid()}")


def sweep(root):
    return [p for p in root.glob("*.json.tmp.*")]
