import json
import os


def save(path, payload):
    tmp = str(path) + ".tmp"
    with open(tmp, "w") as f:
        json.dump(payload, f)
    os.replace(tmp, path)
