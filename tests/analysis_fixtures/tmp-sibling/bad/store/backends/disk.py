import json
import os


def put(path, entry):
    tmp = str(path) + ".tmp"
    with open(tmp, "w") as f:
        json.dump(entry, f)
    os.replace(tmp, path)
