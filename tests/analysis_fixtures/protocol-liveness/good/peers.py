from protocol import Bye, Ping, Pong


class Server:
    def __init__(self, transport):
        self.transport = transport

    def handle(self, msg):
        if isinstance(msg, Ping):
            self.transport.send(Pong(seq=msg.seq))
            return
        if isinstance(msg, Bye):
            self.transport.close()


class Client:
    def __init__(self, transport):
        self.transport = transport
        self.latency = []

    def start(self):
        self.transport.send(Ping(seq=0))

    def handle(self, msg):
        if isinstance(msg, Pong):
            self.latency.append(msg.seq)
            return
        if isinstance(msg, Bye):
            self.transport.close()
