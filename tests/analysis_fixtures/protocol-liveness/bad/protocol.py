from dataclasses import dataclass

MESSAGE_TYPES = {}


def _message(cls):
    MESSAGE_TYPES[cls.TYPE] = cls
    return cls


class Message:
    TYPE = ""


@_message
@dataclass(frozen=True)
class Ping(Message):
    TYPE = "ping"
    seq: int


@_message
@dataclass(frozen=True)
class Pong(Message):
    TYPE = "pong"
    seq: int


@_message
@dataclass(frozen=True)
class Bye(Message):
    TYPE = "bye"
    reason: str
