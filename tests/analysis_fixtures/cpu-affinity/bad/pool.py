import os


def default_workers():
    return max(1, (os.cpu_count() or 2) - 1)
