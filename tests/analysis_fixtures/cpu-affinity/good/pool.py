import os


def available_cpus():
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)
