import threading


class Ledger:
    def __init__(self):
        self._entries_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.entries = {}
        self.stats = {}

    def record(self, key, value):
        with self._entries_lock:
            with self._stats_lock:
                self.entries[key] = value
                self.stats["writes"] = self.stats.get("writes", 0) + 1

    def snapshot(self):
        with self._entries_lock:
            with self._stats_lock:
                return dict(self.entries), dict(self.stats)
