import threading
from concurrent.futures import ProcessPoolExecutor


class CellLibrary:
    def __init__(self, cells):
        self.cells = dict(cells)
        self._lock = threading.Lock()

    def lookup(self, name):
        with self._lock:
            return self.cells[name]


def evaluate(library, name):
    return library.lookup(name)


def run_all(names):
    library = CellLibrary({name: name.upper() for name in names})
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(evaluate, library, name) for name in names]
        return [future.result() for future in futures]
