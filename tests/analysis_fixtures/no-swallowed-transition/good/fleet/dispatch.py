import logging

logger = logging.getLogger(__name__)


def finish(job, result):
    try:
        job.state = "done"
    except KeyError:
        logger.warning("job vanished before transition")


def teardown(writer):
    try:
        writer.close()
    except Exception:
        pass
