def finish(job, result):
    try:
        job.state = "done"
        job.set_result(result)
    except Exception:
        pass
