from dataclasses import dataclass


@dataclass(frozen=True)
class Config:
    model: str
    seed: int
    stage_jobs: int

    def cache_key(self):
        return (self.model, self.seed)

    def result_key(self):
        return self.cache_key() + (self.stage_jobs,)
