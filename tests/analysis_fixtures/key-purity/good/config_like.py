from dataclasses import dataclass


@dataclass(frozen=True)
class Config:
    model: str
    seed: int
    stage_jobs: int

    def resolved_model(self):
        return self.model.lower()

    def cache_key(self):
        return (self.resolved_model(), self.seed)

    def result_key(self):
        return self.cache_key() + (self.model,)
