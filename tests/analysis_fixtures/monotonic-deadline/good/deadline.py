import time


def wait_until(timeout_s):
    deadline = time.monotonic() + timeout_s
    return deadline


def stamp():
    return {"submitted_at": time.time()}
