import time


def wait_until(ready, timeout_s):
    submitted_at = time.time()
    deadline = time.monotonic() + timeout_s
    while not ready():
        if time.monotonic() > deadline:
            return (False, submitted_at)
    return (True, submitted_at)
