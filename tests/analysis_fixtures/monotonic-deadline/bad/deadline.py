import time


def wait_until(timeout_s):
    deadline = time.time() + timeout_s
    return deadline
