import time


def wait_until(ready, timeout_s):
    started = time.time()
    deadline = started + timeout_s
    while not ready():
        if time.monotonic() > deadline:
            return False
    return True
