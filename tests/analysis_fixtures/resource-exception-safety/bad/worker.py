"""Seeded defect: a socket acquired outside `with` is never released —
the first exception after connect orphans the file descriptor."""

import socket


def fetch(host):
    sock = socket.create_connection((host, 9000))
    sock.sendall(b"ping")
    return sock.recv(16)
