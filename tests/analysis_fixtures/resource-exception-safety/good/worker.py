"""Exception-safe lifetimes: `with`, try/finally, a finally that
releases through a helper-method split, and an escaping handle whose
caller owns the close."""

import socket
from concurrent.futures import ThreadPoolExecutor


def fetch_with(host):
    with socket.create_connection((host, 9000)) as sock:
        sock.sendall(b"ping")
        return sock.recv(16)


def fetch_finally(host):
    sock = socket.create_connection((host, 9000))
    try:
        sock.sendall(b"ping")
        return sock.recv(16)
    finally:
        sock.close()


def connect(host):
    sock = socket.create_connection((host, 9000))
    return sock  # caller owns the lifetime


class Runner:
    def run(self, ctx):
        ctx.executor = ThreadPoolExecutor(max_workers=2)
        try:
            return ctx.executor.submit(len, "work").result()
        finally:
            self._teardown(ctx)

    def _teardown(self, ctx):
        ctx.executor.shutdown(wait=True)
