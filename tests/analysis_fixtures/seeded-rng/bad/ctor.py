import random

import numpy as np


def make_rng():
    return random.Random()


def make_gen():
    return np.random.default_rng()
