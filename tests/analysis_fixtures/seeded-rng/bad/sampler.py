import random as _random


def pick(items):
    return _random.choice(items)
