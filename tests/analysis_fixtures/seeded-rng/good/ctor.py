import random

import numpy as np


def make_rng(seed):
    return random.Random(seed)


def make_gen(seed):
    return np.random.default_rng(seed)
