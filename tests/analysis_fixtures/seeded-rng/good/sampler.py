import random

import numpy as np


def pick(items, seed):
    rng = random.Random(seed)
    return rng.choice(items)


def noise(seed, n):
    gen = np.random.default_rng(seed)
    return gen.normal(size=n)
