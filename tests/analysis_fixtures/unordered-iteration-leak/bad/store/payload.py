"""Seeded defect: a store payload row list materialises set iteration
order, which PYTHONHASHSEED reshuffles between runs."""


def payload_rows(tags):
    unique = set(tags)
    rows = [f"tag={tag}" for tag in unique]
    return {"rows": rows}
