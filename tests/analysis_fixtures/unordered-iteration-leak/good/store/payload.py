"""Order-safe twin: sorted() pins the order before it can leak, and
order-insensitive reductions never leak it at all."""


def payload_rows(tags):
    unique = set(tags)
    rows = [f"tag={tag}" for tag in sorted(unique)]
    return {"rows": rows, "count": len(unique)}
