import asyncio
import time


def backoff(attempt):
    delay = min(2 ** attempt, 30)
    time.sleep(delay)
    return delay


async def poll_forever(check):
    attempt = 0
    loop = asyncio.get_running_loop()
    while not await check():
        await loop.run_in_executor(None, backoff, attempt)
        attempt += 1
