import time


def backoff(attempt):
    delay = min(2 ** attempt, 30)
    time.sleep(delay)
    return delay


async def poll_forever(check):
    attempt = 0
    while not await check():
        backoff(attempt)
        attempt += 1
