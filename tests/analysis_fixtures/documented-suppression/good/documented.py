import time


def age(created_at):
    # repro: allow[monotonic-deadline] compares persisted wall-clock stamps
    return time.time() - created_at
