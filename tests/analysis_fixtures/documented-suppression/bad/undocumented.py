import time


def age(created_at):
    return time.time() - created_at  # repro: allow[monotonic-deadline]
