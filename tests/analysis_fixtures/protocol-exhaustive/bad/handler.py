from protocol import Message, Ping


def handle(msg):
    if isinstance(msg, Ping):
        return "ping"
    return None
