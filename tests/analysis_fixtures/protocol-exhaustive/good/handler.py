from protocol import Message, Ping, Pong


def handle(msg):
    if isinstance(msg, Ping):
        return "ping"
    if isinstance(msg, Pong):
        return "pong"
    return None
