"""Deterministic twin of the bad fixture: the payload is a pure
function of the config, and the wall-clock read that remains feeds a
log line, never the keyed payload."""

import time


class Store:
    def __init__(self):
        self.data = {}

    def put(self, kind, key, payload):
        self.data[(kind, key)] = payload


def cache_key(config):
    return repr(sorted(config.items()))


def stage_measure(config):
    return {"power": float(config["load"]), "inputs": sorted(config)}


def log_line(message):
    stamp = time.strftime("%H:%M:%S")
    return f"{stamp} {message}"


def execute_one(store, config):
    output = stage_measure(config)
    store.put("result", cache_key(config), output)
    print(log_line("stored"))
    return output
