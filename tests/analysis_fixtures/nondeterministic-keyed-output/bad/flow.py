"""Seeded defect: a stage feeding a keyed store payload reads the wall
clock, so the bytes stored under cache_key() differ between runs."""

import time


class Store:
    def __init__(self):
        self.data = {}

    def put(self, kind, key, payload):
        self.data[(kind, key)] = payload


def cache_key(config):
    return repr(sorted(config.items()))


def _stamp():
    return time.time()


def stage_measure(config):
    return {"power": float(config["load"]), "stamp": _stamp()}


def execute_one(store, config):
    output = stage_measure(config)
    store.put("result", cache_key(config), output)
    return output
