"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.network.blif import save_blif


@pytest.fixture
def blif_file(tmp_path, small_random):
    path = tmp_path / "small.blif"
    save_blif(small_random, str(path))
    return str(path)


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        names = set(sub.choices)
        assert {
            "figure2",
            "figure5",
            "figure9",
            "figure10",
            "table1",
            "table2",
            "synth",
            "info",
            "sweep",
            "cache",
            "serve",
        } <= names

    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "2", "--queue-size", "4",
             "--timeout-s", "30", "--store", "--no-progress"]
        )
        assert args.port == 0 and args.jobs == 2 and args.queue_size == 4
        assert args.timeout_s == 30.0 and args.store and args.no_progress

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "argv",
        [
            ["table1", "--stage-jobs", "2"],
            ["table2", "--stage-jobs", "2"],
            ["synth", "x.blif", "--stage-jobs", "2"],
            ["batch", "dir", "--stage-jobs", "2"],
            ["sweep", "dir", "--grid", "seed=1,2", "--stage-jobs", "2"],
            ["serve", "--stage-jobs", "2"],
        ],
    )
    def test_stage_jobs_flag_parses_everywhere(self, argv):
        args = build_parser().parse_args(argv)
        assert args.stage_jobs == 2

    def test_stage_jobs_defaults_to_config_choice(self):
        """Not passing the flag must leave the config's own stage_jobs
        (including the auto default) untouched."""
        from repro.cli import _effective_config

        args = build_parser().parse_args(["synth", "x.blif"])
        assert args.stage_jobs is None
        assert _effective_config(args).stage_jobs == 0  # auto

    def test_stage_jobs_flag_reaches_the_config(self):
        from repro.cli import _effective_config

        args = build_parser().parse_args(["synth", "x.blif", "--stage-jobs", "3"])
        assert _effective_config(args).stage_jobs == 3


class TestCommands:
    def test_figure2(self, capsys):
        assert main(["figure2", "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "domino_S" in out

    def test_figure5(self, capsys):
        assert main(["figure5", "--vectors", "4096"]) == 0
        out = capsys.readouterr().out
        assert "min power" in out

    def test_figure9(self, capsys):
        assert main(["figure9"]) == 0
        assert "supervertex" in capsys.readouterr().out

    def test_figure10(self, capsys):
        assert main(["figure10"]) == 0
        assert "Figure 10" in capsys.readouterr().out

    def test_table1_single_circuit(self, capsys):
        assert main(["table1", "--circuits", "frg1", "--vectors", "512"]) == 0
        out = capsys.readouterr().out
        assert "frg1" in out
        assert "Table 1" in out

    def test_table2_single_circuit(self, capsys):
        assert main(["table2", "--circuits", "frg1", "--vectors", "512"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_info(self, capsys, blif_file):
        assert main(["info", blif_file]) == 0
        out = capsys.readouterr().out
        assert "inputs" in out
        assert "depth" in out

    def test_synth_stage_jobs_output_identical(self, capsys, blif_file):
        assert main(["synth", blif_file, "--vectors", "256", "--stage-jobs", "1"]) == 0
        sequential = capsys.readouterr().out
        assert main(["synth", blif_file, "--vectors", "256", "--stage-jobs", "2"]) == 0
        assert capsys.readouterr().out == sequential

    def test_synth(self, capsys, blif_file):
        assert main(["synth", blif_file, "--vectors", "512"]) == 0
        out = capsys.readouterr().out
        assert "MA assignment" in out
        assert "MP assignment" in out


class TestStoreCommands:
    def test_synth_store_cold_then_warm(self, capsys, blif_file, tmp_path):
        store_dir = str(tmp_path / "store")
        args = ["synth", blif_file, "--vectors", "256", "--store-dir", store_dir]
        assert main(args) == 0
        assert "store: populated" in capsys.readouterr().out
        assert main(args) == 0
        assert "store: served from" in capsys.readouterr().out

    def test_no_store_wins(self, capsys, blif_file, tmp_path):
        store_dir = str(tmp_path / "store")
        args = ["synth", blif_file, "--vectors", "256", "--store-dir", store_dir]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--no-store"]) == 0
        assert "store:" not in capsys.readouterr().out

    def test_table1_store_served_line(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        args = [
            "table1", "--circuits", "frg1", "--vectors", "256",
            "--store-dir", store_dir,
        ]
        assert main(args) == 0
        assert "store-served 0/1" in capsys.readouterr().out
        assert main(args) == 0
        assert "store-served 1/1" in capsys.readouterr().out

    def test_batch_store_and_order_flags(self, capsys, blif_file, tmp_path):
        store_dir = str(tmp_path / "store")
        args = [
            "batch", blif_file, "--vectors", "256", "--no-progress",
            "--store-dir", store_dir, "--order", "fifo", "--timeout-s", "120",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "1 store-served" in capsys.readouterr().out

    def test_sweep_and_cache_commands(self, capsys, blif_file, tmp_path):
        store_dir = str(tmp_path / "store")
        assert (
            main(
                [
                    "sweep", blif_file,
                    "--grid", "n_vectors=256,512",
                    "--store-dir", store_dir,
                    "--no-progress",
                    "--output", str(tmp_path / "manifest.json"),
                    "--record", "--runs-dir", str(tmp_path / "runs"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Sweep over 2 point(s)" in out
        assert "recorded run sweep-" in out
        assert (tmp_path / "manifest.json").is_file()
        assert main(["cache", "stats", "--store-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "prepare" in out and "flow" in out
        assert main(["cache", "gc", "--store-dir", store_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--store-dir", store_dir]) == 0
        assert "removed" in capsys.readouterr().out

    def test_sweep_record_defaults_runs_dir_under_store(self, capsys, blif_file, tmp_path):
        store_dir = tmp_path / "store"
        assert (
            main(
                [
                    "sweep", blif_file,
                    "--grid", "n_vectors=256",
                    "--store-dir", str(store_dir),
                    "--no-progress", "--record",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert list((store_dir / "runs").glob("sweep-*.json"))

    def test_bad_grid_is_config_error(self, capsys, blif_file):
        assert main(["sweep", blif_file, "--grid", "nonsense"]) == 2
        assert "config error" in capsys.readouterr().err
