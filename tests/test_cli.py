"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.network.blif import save_blif


@pytest.fixture
def blif_file(tmp_path, small_random):
    path = tmp_path / "small.blif"
    save_blif(small_random, str(path))
    return str(path)


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        names = set(sub.choices)
        assert {
            "figure2",
            "figure5",
            "figure9",
            "figure10",
            "table1",
            "table2",
            "synth",
            "info",
        } <= names

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_figure2(self, capsys):
        assert main(["figure2", "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "domino_S" in out

    def test_figure5(self, capsys):
        assert main(["figure5", "--vectors", "4096"]) == 0
        out = capsys.readouterr().out
        assert "min power" in out

    def test_figure9(self, capsys):
        assert main(["figure9"]) == 0
        assert "supervertex" in capsys.readouterr().out

    def test_figure10(self, capsys):
        assert main(["figure10"]) == 0
        assert "Figure 10" in capsys.readouterr().out

    def test_table1_single_circuit(self, capsys):
        assert main(["table1", "--circuits", "frg1", "--vectors", "512"]) == 0
        out = capsys.readouterr().out
        assert "frg1" in out
        assert "Table 1" in out

    def test_table2_single_circuit(self, capsys):
        assert main(["table2", "--circuits", "frg1", "--vectors", "512"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_info(self, capsys, blif_file):
        assert main(["info", blif_file]) == 0
        out = capsys.readouterr().out
        assert "inputs" in out
        assert "depth" in out

    def test_synth(self, capsys, blif_file):
        assert main(["synth", blif_file, "--vectors", "512"]) == 0
        out = capsys.readouterr().out
        assert "MA assignment" in out
        assert "MP assignment" in out
