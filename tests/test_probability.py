"""Unit tests for signal-probability computation."""

import numpy as np
import pytest

from repro.errors import PowerError
from repro.network.netlist import GateType, LogicNetwork
from repro.power.probability import (
    bdd_probabilities,
    monte_carlo_probabilities,
    node_probabilities,
    random_source_batch,
    simulate_batch,
    uniform_input_probabilities,
)

from helpers import all_input_vectors


class TestUniformProbs:
    def test_covers_inputs_and_latches(self, fig7):
        probs = uniform_input_probabilities(fig7, 0.3)
        assert probs["a"] == 0.3
        assert probs["l0"] == 0.3
        assert len(probs) == 5


class TestSimulateBatch:
    def test_matches_scalar_evaluation(self, small_random):
        rng = np.random.default_rng(0)
        batch = {
            pi: rng.random(32) < 0.5 for pi in small_random.inputs
        }
        values = simulate_batch(small_random, batch)
        for k in range(32):
            vec = {pi: bool(batch[pi][k]) for pi in small_random.inputs}
            ref = small_random.evaluate(vec)
            for name, arr in values.items():
                assert bool(arr[k]) == ref[name], name

    def test_missing_source_raises(self, simple_and_or):
        with pytest.raises(PowerError):
            simulate_batch(simple_and_or, {"a": np.array([True])})

    def test_inconsistent_batch_raises(self, simple_and_or):
        with pytest.raises(PowerError):
            simulate_batch(
                simple_and_or,
                {
                    "a": np.array([True]),
                    "b": np.array([True, False]),
                    "c": np.array([False]),
                },
            )

    def test_empty_sources_raise(self, simple_and_or):
        with pytest.raises(PowerError):
            simulate_batch(simple_and_or, {})

    def test_all_gate_types_batch(self):
        net = LogicNetwork("m")
        for pi in ("a", "b", "c"):
            net.add_input(pi)
        net.add_gate("nand2", GateType.NAND, ["a", "b"])
        net.add_gate("nor2", GateType.NOR, ["a", "b"])
        net.add_gate("xnor2", GateType.XNOR, ["a", "b"])
        net.add_gate("mux", GateType.MUX, ["a", "b", "c"])
        for g in ("nand2", "nor2", "xnor2", "mux"):
            net.add_output(f"po_{g}", g)
        rng = np.random.default_rng(1)
        batch = {pi: rng.random(64) < 0.5 for pi in net.inputs}
        values = simulate_batch(net, batch)
        for k in range(64):
            vec = {pi: bool(batch[pi][k]) for pi in net.inputs}
            ref = net.evaluate(vec)
            for g in ("nand2", "nor2", "xnor2", "mux"):
                assert bool(values[g][k]) == ref[g]


class TestRandomSourceBatch:
    def test_deterministic_with_seed(self, simple_and_or):
        b1 = random_source_batch(simple_and_or, {"a": 0.5}, 64, seed=5)
        b2 = random_source_batch(simple_and_or, {"a": 0.5}, 64, seed=5)
        for k in b1:
            assert (b1[k] == b2[k]).all()

    def test_respects_probability(self, simple_and_or):
        batch = random_source_batch(simple_and_or, {"a": 0.9, "b": 0.1}, 20000, seed=0)
        assert batch["a"].mean() == pytest.approx(0.9, abs=0.02)
        assert batch["b"].mean() == pytest.approx(0.1, abs=0.02)

    def test_includes_latches(self, fig7):
        batch = random_source_batch(fig7, {}, 16, seed=0)
        assert "l0" in batch and "l1" in batch


class TestEngines:
    def test_bdd_exact_values(self, simple_and_or):
        probs = bdd_probabilities(simple_and_or, {"a": 0.5, "b": 0.5, "c": 0.5})
        assert probs["ab"] == pytest.approx(0.25)
        assert probs["x"] == pytest.approx(0.25 + 0.5 - 0.125)
        assert probs["y"] == pytest.approx(0.75)

    def test_monte_carlo_close_to_bdd(self, small_random):
        input_probs = uniform_input_probabilities(small_random)
        exact = bdd_probabilities(small_random, input_probs)
        mc = monte_carlo_probabilities(small_random, input_probs, n_vectors=30000, seed=1)
        for name, p in exact.items():
            assert mc[name] == pytest.approx(p, abs=0.03), name

    def test_skewed_inputs(self, simple_and_or):
        probs = bdd_probabilities(simple_and_or, {"a": 0.9, "b": 0.9, "c": 0.9})
        assert probs["ab"] == pytest.approx(0.81)


class TestNodeProbabilitiesDispatch:
    def test_auto_uses_bdd(self, small_random):
        result = node_probabilities(small_random)
        assert result.method == "bdd"
        assert result.bdd_nodes > 0

    def test_auto_falls_back_to_monte_carlo(self, medium_random):
        result = node_probabilities(medium_random, max_nodes=4)
        assert result.method == "monte-carlo"
        assert result.n_vectors > 0

    def test_bdd_strict_raises(self, medium_random):
        from repro.errors import BddError

        with pytest.raises(BddError):
            node_probabilities(medium_random, method="bdd", max_nodes=4)

    def test_explicit_monte_carlo(self, small_random):
        result = node_probabilities(small_random, method="monte-carlo")
        assert result.method == "monte-carlo"

    def test_unknown_method_raises(self, small_random):
        with pytest.raises(PowerError):
            node_probabilities(small_random, method="quantum")

    def test_default_inputs_are_half(self, simple_and_or):
        result = node_probabilities(simple_and_or)
        assert result.probabilities["a"] == pytest.approx(0.5)
