"""Stage-level MA/MP parallelism: ``FlowConfig.stage_jobs`` resolution,
bit-identical results at every thread count, the optimize_mp/MA-build
overlap, and PipelineCache / ArtifactStore consistency when stage
threads run concurrently."""

import json
import threading

import pytest

from repro.bench.generators import GeneratorConfig, random_control_network
from repro.core import pipeline as pipeline_mod
from repro.core.batch import run_many
from repro.core.config import (
    MAX_USEFUL_STAGE_JOBS,
    POOL_WORKER_ENV,
    FlowConfig,
    in_pool_worker,
)
from repro.core.pipeline import Pipeline, PipelineCache
from repro.errors import ConfigError
from repro.report import flow_result_to_dict
from repro.store import ArtifactStore


def tiny_network(name="tiny", seed=3):
    cfg = GeneratorConfig(n_inputs=10, n_outputs=4, n_gates=28, seed=seed)
    return random_control_network(name, cfg)


def flow_json(flow) -> str:
    """Canonical byte representation of one FlowResult."""
    return json.dumps(flow_result_to_dict(flow), sort_keys=True)


FAST = FlowConfig(n_vectors=256)


class TestResolution:
    def test_explicit_value_wins(self):
        assert FAST.replace(stage_jobs=3).resolved_stage_jobs() == 3
        assert FAST.replace(stage_jobs=1).resolved_stage_jobs() == 1

    def test_auto_uses_threads_on_multicore(self, monkeypatch):
        monkeypatch.delenv(POOL_WORKER_ENV, raising=False)
        monkeypatch.setattr("repro.core.config._available_cpus", lambda: 8)
        assert FAST.resolved_stage_jobs() == MAX_USEFUL_STAGE_JOBS

    def test_auto_sequential_on_single_core(self, monkeypatch):
        monkeypatch.delenv(POOL_WORKER_ENV, raising=False)
        monkeypatch.setattr("repro.core.config._available_cpus", lambda: 1)
        assert FAST.resolved_stage_jobs() == 1

    def test_auto_respects_cpu_affinity_not_host_count(self, monkeypatch):
        """A container pinned to one CPU on a many-core host must not
        spawn useless stage threads: the affinity mask is the truth."""
        monkeypatch.delenv(POOL_WORKER_ENV, raising=False)
        monkeypatch.setattr("repro.core.config.os.cpu_count", lambda: 64)
        if hasattr(__import__("os"), "sched_getaffinity"):
            monkeypatch.setattr(
                "repro.core.config.os.sched_getaffinity", lambda pid: {0}
            )
        else:  # pragma: no cover — non-Linux fallback path
            monkeypatch.setattr("repro.core.config.os.cpu_count", lambda: 1)
        assert FAST.resolved_stage_jobs() == 1

    def test_auto_sequential_inside_pool_worker(self, monkeypatch):
        monkeypatch.setenv(POOL_WORKER_ENV, "1")
        monkeypatch.setattr("repro.core.config._available_cpus", lambda: 8)
        assert in_pool_worker()
        assert FAST.resolved_stage_jobs() == 1
        # an explicit setting still overrides the worker heuristic
        assert FAST.replace(stage_jobs=4).resolved_stage_jobs() == 4

    def test_mark_pool_worker_sets_the_sentinel(self, monkeypatch):
        from repro.core.batch import _pool_worker_init

        monkeypatch.delenv(POOL_WORKER_ENV, raising=False)
        assert not in_pool_worker()
        _pool_worker_init()
        assert in_pool_worker()
        monkeypatch.delenv(POOL_WORKER_ENV, raising=False)

    def test_serve_worker_init_marks_pool_worker(self, monkeypatch):
        from repro.serve.service import _worker_init

        monkeypatch.delenv(POOL_WORKER_ENV, raising=False)
        _worker_init()
        assert in_pool_worker()
        monkeypatch.delenv(POOL_WORKER_ENV, raising=False)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FlowConfig(stage_jobs=-1)
        with pytest.raises(ConfigError):
            FlowConfig(stage_jobs=True)
        with pytest.raises(ConfigError):
            FlowConfig(stage_jobs=1.5)


class TestDeterminism:
    @pytest.mark.parametrize("timed", [False, True])
    def test_parallel_flow_is_bit_identical(self, timed):
        net = tiny_network()
        base = FAST.replace(timed=timed)
        sequential = Pipeline(base.replace(stage_jobs=1)).run(net)
        parallel = Pipeline(base.replace(stage_jobs=4)).run(net)
        assert flow_json(sequential.flow) == flow_json(parallel.flow)
        # same stages executed, none silently skipped by the threading
        assert [s.skipped for s in sequential.stages] == [
            s.skipped for s in parallel.stages
        ]

    def test_run_many_stage_jobs_override_is_bit_identical(self):
        nets = [tiny_network("a", 3), tiny_network("b", 5)]
        sequential = run_many(nets, FAST, stage_jobs=1)
        threaded = run_many(nets, FAST, stage_jobs=4)
        assert all(item.ok for item in threaded.items)
        for s, t in zip(sequential.items, threaded.items):
            assert flow_json(s.result) == flow_json(t.result)
            # the override reaches the item configs
            assert t.config.stage_jobs == 4

    def test_variant_units_actually_run_on_stage_threads(self, monkeypatch):
        seen = []
        real = pipeline_mod._build_variant

        def spying(ctx, label, assignment, est_power=None):
            seen.append((label, threading.current_thread().name))
            return real(ctx, label, assignment, est_power)

        monkeypatch.setattr(pipeline_mod, "_build_variant", spying)
        Pipeline(FAST.replace(stage_jobs=2)).run(tiny_network())
        labels = {label for label, _ in seen}
        assert labels == {"MA", "MP"}
        # the MA lookahead (and at least one unit) ran on a stage thread
        assert any(name.startswith("repro-stage") for _, name in seen)

    def test_lookahead_skipped_with_overrides(self, monkeypatch):
        """A custom stage may mutate the context, so the optimize_mp
        overlap must not run concurrently with it."""
        submitted = []
        real = pipeline_mod._submit_ma_lookahead

        def spying(ctx):
            submitted.append(True)
            return real(ctx)

        monkeypatch.setattr(pipeline_mod, "_submit_ma_lookahead", spying)
        override = {"resize": lambda ctx: {}}
        Pipeline(
            FAST.replace(stage_jobs=2, timed=True), overrides=override
        ).run(tiny_network())
        assert not submitted

    def test_stale_lookahead_recomputed(self):
        """If the prebuilt MA variant no longer matches the assignment
        the transform stage settles on, it is discarded, not used."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.core.pipeline import _stage_transform_map

        net = tiny_network()
        config = FAST.replace(stage_jobs=2)
        run = Pipeline(config).run(net)
        ctx = run.context
        # poison a fake prebuild carrying a different assignment
        from repro.phase import PhaseAssignment

        wrong = pipeline_mod._build_variant(
            ctx, "MA", PhaseAssignment.all_negative(ctx.aoi.output_names())
        )
        with ThreadPoolExecutor(max_workers=1) as pool:
            ctx.executor = pool
            future = pool.submit(lambda: wrong)
            ctx.ma_prebuild = future
            builds = _stage_transform_map(ctx)
            ctx.executor = None
        assert builds["MA"].assignment == run.context.builds["MA"].assignment
        assert builds["MA"] is not wrong


class TestTimeoutInteraction:
    def test_budgeted_item_runs_stages_sequentially(self, monkeypatch):
        """A per-item timeout_s forces stage_jobs=1: the guard raises in
        the orchestrating thread, so hung work in a stage thread would
        survive the timeout and then be joined — stalling the batch the
        budget exists to prevent."""
        from repro.core import pipeline as pm
        from repro.core.batch import execute_one

        seen = []
        real = pm.Pipeline

        class Spy(real):
            def __init__(self, config=None, **kwargs):
                seen.append(config.resolved_stage_jobs())
                super().__init__(config, **kwargs)

        monkeypatch.setattr(pm, "Pipeline", Spy)
        net = tiny_network()
        result, error, _, _ = execute_one(
            "network", net, FAST.replace(stage_jobs=4), timeout_s=600.0
        )
        assert error is None and result is not None
        assert seen == [1]
        # without a budget, the explicit setting is honoured
        execute_one("network", net, FAST.replace(stage_jobs=4))
        assert seen == [1, 4]


class TestSharedStateUnderThreads:
    def test_pipeline_cache_consistent_under_concurrent_runs(self):
        net = tiny_network()
        cache = PipelineCache()
        config = FAST.replace(stage_jobs=2)
        reference = flow_json(Pipeline(FAST).run(net).flow)
        results, errors = [], []

        def worker():
            try:
                results.append(
                    flow_json(Pipeline(config, cache=cache).run(net).flow)
                )
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=240)
        assert not errors
        assert all(r == reference for r in results)
        with cache._lock:
            n_entries = len(cache._entries)
        assert n_entries == 2  # prepare + evaluator, no duplicate keys
        assert cache.hits + cache.misses >= 8

    def test_store_consistent_under_concurrent_stage_threads(self, tmp_path):
        net = tiny_network()
        reference = flow_json(Pipeline(FAST).run(net).flow)
        store = ArtifactStore(tmp_path / "store")
        config = FAST.replace(stage_jobs=4)
        results, errors = [], []

        def worker():
            try:
                results.append(
                    flow_json(Pipeline(config, store=store).run(net).flow)
                )
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=240)
        assert not errors
        assert all(r == reference for r in results)
        # the store stayed coherent: a fresh run is served whole from it
        warm = Pipeline(FAST.replace(stage_jobs=1), store=store).run(net)
        assert all(s.cached or s.skipped for s in warm.stages)
        assert flow_json(warm.flow) == reference

    def test_warm_store_run_identical_across_stage_jobs(self, tmp_path):
        net = tiny_network()
        store = ArtifactStore(tmp_path / "store")
        cold = Pipeline(FAST.replace(stage_jobs=2), store=store).run(net)
        warm = Pipeline(FAST.replace(stage_jobs=1), store=store).run(net)
        assert flow_json(cold.flow) == flow_json(warm.flow)
        assert all(s.cached or s.skipped for s in warm.stages)


class TestStoreIdentity:
    def test_stage_jobs_excluded_from_keys(self):
        a = FAST.replace(stage_jobs=1)
        b = FAST.replace(stage_jobs=4)
        assert a.cache_key() == b.cache_key()
        assert a.result_key() == b.result_key()

    def test_stage_jobs_round_trips(self):
        config = FAST.replace(stage_jobs=3)
        assert FlowConfig.from_dict(config.to_dict()).stage_jobs == 3
        assert FlowConfig.from_json(config.to_json()).stage_jobs == 3
