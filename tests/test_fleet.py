"""Fleet tests: wire protocol, coordinator supervision edges driven by
scripted fake workers (heartbeat loss, dead connections, bounded retry,
quarantine, cancel), affinity routing, and a live two-worker HTTP stack
asserting byte-identical results to single-process serve."""

import asyncio
import json
import threading

import pytest

from repro.bench.generators import GeneratorConfig, random_control_network
from repro.bench.mcnc import spec_by_name
from repro.core.config import FlowConfig
from repro.errors import FleetError, ProtocolError
from repro.fleet import (
    Coordinator,
    FleetBackend,
    Goodbye,
    Heartbeat,
    JobAssign,
    JobCancel,
    JobFailed,
    JobResult,
    Lease,
    Quarantine,
    Register,
    Registered,
    Requeue,
    Worker,
    decode_message,
    decode_work,
    encode_message,
    encode_work,
    recv_message,
    send_message,
)
from repro.fleet.protocol import PROTOCOL_VERSION
from repro.serve import Service, serve_forever
from repro.store import ArtifactStore

FAST = FlowConfig(n_vectors=256)
FAKE_WORK = {"kind": "blif", "path": "nonexistent.blif"}


def tiny_network(name="tiny", seed=3):
    cfg = GeneratorConfig(n_inputs=10, n_outputs=4, n_gates=28, seed=seed)
    return random_control_network(name, cfg)


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# wire protocol


class TestProtocol:
    def test_round_trip_every_message_type(self):
        messages = [
            Register(worker_id="w1", host="h", pid=1, slots=2,
                     warm_fingerprints=["ab" * 8]),
            Registered(worker_id="w1", heartbeat_interval_s=2.0, miss_limit=3),
            Heartbeat(worker_id="w1", inflight=["fleet-1"]),
            Lease(worker_id="w1", slots=2),
            JobAssign(job_id="fleet-1", name="frg1", work=FAKE_WORK,
                      config={}, timeout_s=5.0, fingerprint="f" * 16,
                      attempt=1),
            JobAssign(job_id="fleet-2", name="frg1", work=FAKE_WORK,
                      config={}),
            JobResult(job_id="fleet-1", flow={"ckt": "frg1"},
                      runtime_s=1.25, cached=True, fingerprint="f" * 16),
            JobFailed(job_id="fleet-1", error="boom", runtime_s=0.5),
            JobCancel(job_id="fleet-1"),
            Requeue(job_id="fleet-1", reason="draining"),
            Quarantine(worker_id="w1", reason="3 failures"),
            Goodbye(worker_id="w1", reason="drained"),
        ]
        for msg in messages:
            decoded = decode_message(encode_message(msg))
            assert decoded == msg, type(msg).TYPE

    def test_frames_are_versioned_json(self):
        frame = json.loads(encode_message(Heartbeat(worker_id="w1")))
        assert frame["v"] == PROTOCOL_VERSION
        assert frame["type"] == "heartbeat"
        assert frame["worker_id"] == "w1"

    def test_version_mismatch_rejected(self):
        frame = json.loads(encode_message(Heartbeat(worker_id="w1")))
        frame["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            decode_message(json.dumps(frame).encode())

    def test_unknown_type_rejected(self):
        bad = json.dumps({"v": PROTOCOL_VERSION, "type": "frobnicate"})
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_message(bad.encode())

    def test_unknown_field_rejected(self):
        frame = json.loads(encode_message(Heartbeat(worker_id="w1")))
        frame["extra"] = 1
        with pytest.raises(ProtocolError, match="unknown field"):
            decode_message(json.dumps(frame).encode())

    def test_missing_field_rejected(self):
        bad = json.dumps({"v": PROTOCOL_VERSION, "type": "job_cancel"})
        with pytest.raises(ProtocolError, match="job_cancel"):
            decode_message(bad.encode())

    def test_ill_typed_field_rejected(self):
        with pytest.raises(ProtocolError, match="worker_id"):
            Heartbeat(worker_id=7)
        with pytest.raises(ProtocolError, match="slots"):
            Lease(worker_id="w1", slots=0)
        with pytest.raises(ProtocolError, match="slots"):
            Register(worker_id="w1", host="h", pid=1, slots=0)

    def test_garbage_bytes_rejected(self):
        with pytest.raises(ProtocolError, match="JSON"):
            decode_message(b"\xff\xfe not json")
        with pytest.raises(ProtocolError, match="object"):
            decode_message(b"[1,2,3]")

    def test_work_codec_network_round_trip(self):
        net = tiny_network("wire", 5)
        kind, payload = decode_work(encode_work("network", net))
        assert kind == "network"
        assert payload.fingerprint() == net.fingerprint()

    def test_work_codec_spec_round_trip(self):
        spec = spec_by_name("frg1")
        kind, payload = decode_work(encode_work("spec", spec))
        assert kind == "spec" and payload == spec

    def test_work_codec_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_work({"kind": "network", "network": {"bogus": 1}})
        with pytest.raises(ProtocolError):
            decode_work({"kind": "teapot"})
        with pytest.raises(ProtocolError):
            decode_work("not a dict")


# ----------------------------------------------------------------------
# scripted fake worker


class FakeWorker:
    """A hand-driven protocol endpoint for supervision tests: the test
    decides exactly when to register, lease, heartbeat, answer, or die."""

    def __init__(self, port, worker_id, slots=1, warm=()):
        self.port = port
        self.worker_id = worker_id
        self.slots = slots
        self.warm = list(warm)
        self.reader = None
        self.writer = None
        self._beats = None

    async def register(self):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )
        await send_message(
            self.writer,
            Register(worker_id=self.worker_id, host="test", pid=1,
                     slots=self.slots, warm_fingerprints=self.warm),
        )
        ack = await self.recv()
        assert isinstance(ack, Registered)
        return ack

    async def lease(self, slots=1):
        await send_message(self.writer, Lease(worker_id=self.worker_id,
                                              slots=slots))

    async def heartbeat(self):
        await send_message(self.writer, Heartbeat(worker_id=self.worker_id))

    def start_heartbeats(self, interval_s):
        async def loop():
            while True:
                await asyncio.sleep(interval_s)
                await self.heartbeat()

        self._beats = asyncio.create_task(loop())

    async def send(self, msg):
        await send_message(self.writer, msg)

    async def recv(self, timeout=10):
        return await asyncio.wait_for(recv_message(self.reader), timeout)

    async def close(self):
        if self._beats is not None:
            self._beats.cancel()
            try:
                await self._beats
            except asyncio.CancelledError:
                pass
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def wait_until(predicate, timeout=10, interval=0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return
        await asyncio.sleep(interval)
    raise AssertionError("condition never became true")


# ----------------------------------------------------------------------
# supervision edges


class TestSupervision:
    def test_heartbeat_loss_requeues_to_survivor(self):
        async def body():
            async with Coordinator(port=0, heartbeat_interval_s=0.05,
                                   miss_limit=2) as coord:
                silent = FakeWorker(coord.port, "silent")
                await silent.register()
                await silent.lease()
                job_id = await coord.submit(dict(FAKE_WORK), FAST, name="x")
                assign = await silent.recv()
                assert isinstance(assign, JobAssign)
                assert assign.attempt == 0
                # never heartbeat: the monitor declares this worker dead
                await wait_until(
                    lambda: coord.workers["silent"].state == "dead", timeout=5
                )
                assert coord.jobs[job_id].state == "pending"
                survivor = FakeWorker(coord.port, "survivor")
                await survivor.register()
                survivor.start_heartbeats(0.05)
                await survivor.lease()
                retry = await survivor.recv()
                assert isinstance(retry, JobAssign)
                assert retry.job_id == assign.job_id and retry.attempt == 1
                await survivor.send(JobResult(job_id=job_id,
                                              flow={"ok": True},
                                              runtime_s=0.1))
                flow, error, _, _ = await asyncio.wait_for(
                    coord.outcome(job_id), 10
                )
                assert error is None and flow == {"ok": True}
                await silent.close()
                await survivor.close()

        run(body())

    def test_dead_connection_requeues(self):
        async def body():
            async with Coordinator(port=0, heartbeat_interval_s=0.5) as coord:
                doomed = FakeWorker(coord.port, "doomed")
                await doomed.register()
                await doomed.lease()
                job_id = await coord.submit(dict(FAKE_WORK), FAST, name="x")
                assert isinstance(await doomed.recv(), JobAssign)
                await doomed.close()  # crash: TCP FIN mid-job
                await wait_until(
                    lambda: coord.workers["doomed"].state == "dead", timeout=5
                )
                assert coord.jobs[job_id].state == "pending"
                assert coord.jobs[job_id].attempts == 1

        run(body())

    def test_bounded_retry_exhaustion_surfaces_failure(self):
        async def body():
            async with Coordinator(port=0, heartbeat_interval_s=0.5,
                                   max_requeues=1) as coord:
                job_id = await coord.submit(dict(FAKE_WORK), FAST, name="x")
                for n in range(2):  # max_requeues + 1 lost workers
                    w = FakeWorker(coord.port, f"crash-{n}")
                    await w.register()
                    await w.lease()
                    assign = await w.recv()
                    assert isinstance(assign, JobAssign)
                    assert assign.attempt == n
                    await w.close()
                    await wait_until(
                        lambda wid=w.worker_id: coord.workers[wid].state
                        == "dead",
                        timeout=5,
                    )
                flow, error, _, _ = await asyncio.wait_for(
                    coord.outcome(job_id), 10
                )
                assert flow is None
                assert "gave up after 2 attempt" in error
                assert coord.jobs[job_id].state == "failed"

        run(body())

    def test_repeat_failures_quarantine_worker(self):
        async def body():
            async with Coordinator(port=0, heartbeat_interval_s=0.5,
                                   quarantine_after=2) as coord:
                flaky = FakeWorker(coord.port, "flaky")
                await flaky.register()
                for _ in range(2):
                    await flaky.lease()
                    job_id = await coord.submit(dict(FAKE_WORK), FAST,
                                                name="x")
                    assert isinstance(await flaky.recv(), JobAssign)
                    await flaky.send(JobFailed(job_id=job_id, error="boom"))
                    flow, error, _, _ = await asyncio.wait_for(
                        coord.outcome(job_id), 10
                    )
                    # deterministic failures surface, never retried
                    assert flow is None and error == "boom"
                notice = await flaky.recv()
                assert isinstance(notice, Quarantine)
                assert coord.workers["flaky"].state == "quarantined"
                # a quarantined worker's leases are never served
                await flaky.lease()
                pending = await coord.submit(dict(FAKE_WORK), FAST, name="x")
                await asyncio.sleep(0.2)
                assert coord.jobs[pending].state == "pending"
                stats = coord.stats()
                assert stats["workers"]["quarantined"] == 1
                await flaky.close()

        run(body())

    def test_quarantine_survives_reconnect(self):
        async def body():
            async with Coordinator(port=0, heartbeat_interval_s=0.5,
                                   quarantine_after=1) as coord:
                flaky = FakeWorker(coord.port, "flaky")
                await flaky.register()
                await flaky.lease()
                job_id = await coord.submit(dict(FAKE_WORK), FAST, name="x")
                assert isinstance(await flaky.recv(), JobAssign)
                await flaky.send(JobFailed(job_id=job_id, error="boom"))
                assert isinstance(await flaky.recv(), Quarantine)
                await flaky.close()
                await wait_until(
                    lambda: coord.workers["flaky"].state == "dead", timeout=5
                )
                again = FakeWorker(coord.port, "flaky")
                await again.register()
                notice = await again.recv()  # told immediately
                assert isinstance(notice, Quarantine)
                assert coord.workers["flaky"].state == "quarantined"
                await again.close()

        run(body())

    def test_success_resets_failure_streak(self):
        async def body():
            async with Coordinator(port=0, heartbeat_interval_s=0.5,
                                   quarantine_after=2) as coord:
                w = FakeWorker(coord.port, "wobbly")
                await w.register()
                for error in ("boom", None, "boom"):
                    await w.lease()
                    job_id = await coord.submit(dict(FAKE_WORK), FAST,
                                                name="x")
                    assert isinstance(await w.recv(), JobAssign)
                    if error:
                        await w.send(JobFailed(job_id=job_id, error=error))
                    else:
                        await w.send(JobResult(job_id=job_id, flow={"ok": 1},
                                               runtime_s=0.1))
                    await coord.outcome(job_id)
                # fail, succeed, fail — never two consecutive
                assert coord.workers["wobbly"].state != "quarantined"
                assert coord.workers["wobbly"].failure_streak == 1
                await w.close()

        run(body())

    def test_cancel_recalls_leased_job(self):
        async def body():
            async with Coordinator(port=0, heartbeat_interval_s=0.5) as coord:
                w = FakeWorker(coord.port, "w1")
                await w.register()
                await w.lease()
                job_id = await coord.submit(dict(FAKE_WORK), FAST, name="x")
                assert isinstance(await w.recv(), JobAssign)
                assert await coord.cancel(job_id) is True
                recall = await w.recv()
                assert isinstance(recall, JobCancel)
                assert recall.job_id == job_id
                flow, error, _, _ = await asyncio.wait_for(
                    coord.outcome(job_id), 10
                )
                assert flow is None and "cancelled" in error
                assert coord.jobs[job_id].state == "cancelled"
                # a late result from the racing worker is discarded
                await w.send(JobResult(job_id=job_id, flow={"late": 1},
                                       runtime_s=0.1))
                await asyncio.sleep(0.1)
                assert coord.jobs[job_id].state == "cancelled"
                await w.close()

        run(body())

    def test_cancel_pending_job(self):
        async def body():
            async with Coordinator(port=0) as coord:
                job_id = await coord.submit(dict(FAKE_WORK), FAST, name="x")
                assert await coord.cancel(job_id) is True
                assert coord.jobs[job_id].state == "cancelled"
                assert await coord.cancel(job_id) is False

        run(body())

    def test_worker_handback_carries_no_retry_penalty(self):
        async def body():
            async with Coordinator(port=0, heartbeat_interval_s=0.5,
                                   max_requeues=0) as coord:
                a = FakeWorker(coord.port, "a")
                await a.register()
                await a.lease()
                job_id = await coord.submit(dict(FAKE_WORK), FAST, name="x")
                assert isinstance(await a.recv(), JobAssign)
                await a.send(Requeue(job_id=job_id, reason="draining"))
                await wait_until(
                    lambda: coord.jobs[job_id].state == "pending", timeout=5
                )
                # with max_requeues=0 any retry *penalty* would have
                # failed the job; a handback must not
                assert coord.jobs[job_id].attempts == 0
                b = FakeWorker(coord.port, "b")
                await b.register()
                await b.lease()
                retry = await b.recv()
                assert isinstance(retry, JobAssign) and retry.attempt == 0
                await a.close()
                await b.close()

        run(body())

    def test_graceful_goodbye_requeues_without_penalty(self):
        async def body():
            async with Coordinator(port=0, heartbeat_interval_s=0.5) as coord:
                w = FakeWorker(coord.port, "polite")
                await w.register()
                await w.lease()
                job_id = await coord.submit(dict(FAKE_WORK), FAST, name="x")
                assert isinstance(await w.recv(), JobAssign)
                await w.send(Goodbye(worker_id="polite", reason="drained"))
                await wait_until(
                    lambda: coord.workers["polite"].state == "dead", timeout=5
                )
                # goodbye mid-job still burns an attempt (the work was
                # lost), but the job returns to the queue
                assert coord.jobs[job_id].state == "pending"
                await w.close()

        run(body())


# ----------------------------------------------------------------------
# affinity routing


class TestAffinity:
    def test_repeat_fingerprint_prefers_warm_worker(self):
        async def body():
            fp = "ab" * 8
            async with Coordinator(port=0, heartbeat_interval_s=0.5) as coord:
                cold = FakeWorker(coord.port, "cold")
                warm = FakeWorker(coord.port, "warm", warm=[fp])
                await cold.register()
                await warm.register()
                await cold.lease()
                await warm.lease()
                # leases are processed asynchronously: submit only once
                # both workers are actually pickable
                await wait_until(
                    lambda: coord.workers["cold"].open_leases == 1
                    and coord.workers["warm"].open_leases == 1
                )
                # tie-break alone would pick "cold" (registered first);
                # the warm fingerprint must override that
                job_id = await coord.submit(dict(FAKE_WORK), FAST, name="x",
                                            fingerprint=fp)
                assign = await warm.recv()
                assert isinstance(assign, JobAssign)
                assert assign.fingerprint == fp
                stats = coord.stats()
                assert stats["affinity"]["hits"] == 1
                assert stats["affinity"]["misses"] == 0
                assert stats["affinity"]["hit_rate"] == 1.0
                await warm.send(JobResult(job_id=job_id, flow={"ok": 1},
                                          runtime_s=0.1, fingerprint=fp))
                await coord.outcome(job_id)
                await cold.close()
                await warm.close()

        run(body())

    def test_result_marks_worker_warm(self):
        async def body():
            fp = "cd" * 8
            async with Coordinator(port=0, heartbeat_interval_s=0.5) as coord:
                w = FakeWorker(coord.port, "w1")
                await w.register()
                await w.lease()
                job_id = await coord.submit(dict(FAKE_WORK), FAST, name="x",
                                            fingerprint=fp)
                assert isinstance(await w.recv(), JobAssign)
                assert coord.stats()["affinity"]["misses"] == 1
                await w.send(JobResult(job_id=job_id, flow={"ok": 1},
                                       runtime_s=0.1, fingerprint=fp))
                await coord.outcome(job_id)
                assert fp in coord.workers["w1"].warm
                await w.close()

        run(body())

    def test_unregistered_connection_is_dropped(self):
        async def body():
            async with Coordinator(port=0, heartbeat_interval_s=0.5) as coord:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", coord.port
                )
                # first frame must be a register; anything else drops us
                await send_message(writer, Heartbeat(worker_id="nope"))
                with pytest.raises(asyncio.IncompleteReadError):
                    await asyncio.wait_for(recv_message(reader), 10)
                assert coord.workers == {}
                writer.close()

        run(body())

    def test_constructor_validation(self):
        with pytest.raises(FleetError):
            Coordinator(heartbeat_interval_s=0)
        with pytest.raises(FleetError):
            Coordinator(miss_limit=0)
        with pytest.raises(FleetError):
            Coordinator(max_requeues=-1)
        with pytest.raises(FleetError):
            Coordinator(quarantine_after=0)
        with pytest.raises(FleetError):
            FleetBackend(Coordinator(), max_inflight=0)
        with pytest.raises(FleetError):
            Worker("h", 1, slots=0)


# ----------------------------------------------------------------------
# store warm scan


class TestStoreFingerprints:
    def test_fingerprints_lists_flow_entries(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.fingerprints() == ()
        store.put("flow", "aa" * 8, ("k",), {"x": 1})
        store.put("flow", "bb" * 8, ("k",), {"x": 2})
        store.put("flow", "bb" * 8, ("other",), {"x": 3})
        store.put("prepare", "cc" * 8, ("k",), {"x": 4})
        assert store.fingerprints() == ("aa" * 8, "bb" * 8)
        assert store.fingerprints("prepare") == ("cc" * 8,)


# ----------------------------------------------------------------------
# live fleet end-to-end (real workers, real flows)


class TestFleetEndToEnd:
    def test_two_real_workers_byte_identical_to_local(self, tmp_path):
        nets = [tiny_network("fleet-a", 31), tiny_network("fleet-b", 32)]

        async def local_rows():
            rows = {}
            async with Service(FAST, jobs=1) as svc:
                for net in nets:
                    job = await svc.result(await svc.submit(net), timeout=240)
                    rows[net.name] = job.result.row()
            return rows

        async def fleet_rows():
            coord = Coordinator(port=0, heartbeat_interval_s=0.2)
            backend = FleetBackend(coord, max_inflight=8)
            rows = {}
            async with Service(FAST, backend=backend) as svc:
                workers = [
                    Worker("127.0.0.1", coord.port, slots=1,
                           worker_id=f"real-{n}",
                           store=ArtifactStore(tmp_path / f"w{n}"))
                    for n in range(2)
                ]
                tasks = [asyncio.create_task(w.run()) for w in workers]
                await wait_until(
                    lambda: sum(1 for w in coord.workers.values() if w.live)
                    == 2,
                    timeout=30,
                )
                job_ids = [await svc.submit(net) for net in nets]
                for net, job_id in zip(nets, job_ids):
                    job = await svc.result(job_id, timeout=240)
                    assert job.state == "done", job.error
                    rows[net.name] = job.result.row()
                stats = svc.stats()
                assert stats["backend"]["kind"] == "fleet"
                assert stats["backend"]["registered"] == 2
                for w in workers:
                    w.drain()
                await asyncio.wait_for(asyncio.gather(*tasks), 60)
            return rows

        local = run(local_rows())
        fleet = run(fleet_rows())
        assert json.dumps(local, sort_keys=True) == json.dumps(
            fleet, sort_keys=True
        )


class FleetServerFixture:
    """A live fleet-backed HTTP stack (coordinator + 2 real workers) in
    a background thread — the distributed twin of ServerFixture in
    test_serve_http.py."""

    def __init__(self, tmp_path):
        self._started = threading.Event()
        self._loop = None
        self._stop = None
        self.base = None
        self._thread = threading.Thread(target=self._run,
                                        args=(tmp_path,), daemon=True)
        self._thread.start()
        assert self._started.wait(timeout=60), "fleet stack did not come up"

    def _run(self, tmp_path):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            coord = Coordinator(port=0, heartbeat_interval_s=0.2)
            service = Service(
                FAST, backend=FleetBackend(coord, max_inflight=8),
                queue_size=8,
            )
            workers = []
            tasks = []

            def ready(frontend):
                self.base = f"http://127.0.0.1:{frontend.port}"

            async def boot():
                # the coordinator only binds (resolving port 0) once
                # serve_forever starts the service's backend
                await wait_until(lambda: coord.state == "running",
                                 timeout=30)
                for n in range(2):
                    w = Worker("127.0.0.1", coord.port, slots=1,
                               worker_id=f"http-{n}",
                               store=ArtifactStore(tmp_path / f"w{n}"))
                    workers.append(w)
                    tasks.append(asyncio.create_task(w.run()))
                await wait_until(
                    lambda: sum(1 for w in coord.workers.values() if w.live)
                    == 2,
                    timeout=30,
                )
                self._started.set()

            boot_task = asyncio.create_task(boot())
            await serve_forever(service, port=0, ready=ready,
                                stop=self._stop)
            await boot_task
            for w in workers:
                w.drain()
            await asyncio.gather(*tasks)

        asyncio.run(main())

    def close(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=120)
        assert not self._thread.is_alive(), "fleet stack did not exit"

    def request(self, method, path, body=None):
        import urllib.error
        import urllib.request

        data = json.dumps(body).encode("utf-8") if body is not None else None
        req = urllib.request.Request(self.base + path, data=data,
                                     method=method)
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def poll(self, job_id, timeout=240):
        import time

        deadline = time.time() + timeout
        while time.time() < deadline:
            status, snap = self.request("GET", f"/jobs/{job_id}")
            assert status == 200
            if snap["state"] in ("done", "failed", "cancelled"):
                return snap
            time.sleep(0.1)
        raise AssertionError(f"job {job_id} never finished")


@pytest.fixture(scope="class")
def fleet_server(tmp_path_factory):
    fixture = FleetServerFixture(tmp_path_factory.mktemp("fleet-http"))
    yield fixture
    fixture.close()


class TestFleetHttp:
    def test_healthz_reports_fleet(self, fleet_server):
        status, health = fleet_server.request("GET", "/healthz")
        assert status == 200
        backend = health["backend"]
        assert backend["kind"] == "fleet"
        assert backend["registered"] == 2
        assert backend["workers"]["idle"] + backend["workers"]["busy"] == 2
        assert set(backend["affinity"]) == {"hits", "misses", "hit_rate"}
        assert "queue_depth" in health
        assert len(backend["workers_detail"]) == 2
        assert all("pid" in w for w in backend["workers_detail"])

    def test_http_submit_runs_on_fleet(self, fleet_server):
        from repro.network.blif import write_blif

        blif = write_blif(tiny_network("fleethttp", 41))
        status, snap = fleet_server.request("POST", "/jobs", {"blif": blif})
        assert status == 202
        done = fleet_server.poll(snap["job_id"])
        assert done["state"] == "done", done.get("error")
        assert done["row"]["ckt"] == "fleethttp"

    def test_repeat_fingerprint_scores_affinity_hit(self, fleet_server):
        from repro.network.blif import write_blif

        blif = write_blif(tiny_network("fleetwarm", 43))
        for _ in range(2):
            status, snap = fleet_server.request("POST", "/jobs",
                                                {"blif": blif,
                                                 "config": {"n_vectors": 128}})
            assert status in (200, 202)
            if status == 202:
                fleet_server.poll(snap["job_id"])
        _, health = fleet_server.request("GET", "/healthz")
        affinity = health["backend"]["affinity"]
        assert affinity["hits"] + affinity["misses"] >= 1
