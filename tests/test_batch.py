"""Tests for run_many: parallel parity, error isolation, progress,
seeding, and report round-trips."""

import json

import pytest

from repro.bench.mcnc import spec_by_name
from repro.core.batch import (
    BatchResult,
    derive_seed,
    format_batch,
    run_many,
)
from repro.core.config import FlowConfig
from repro.core.flow import run_flow
from repro.errors import BatchError
from repro.network.blif import save_blif
from repro.report import batch_to_records, save_batch

NAMES = ("frg1", "apex7", "x1")
FAST = FlowConfig(n_vectors=512)


@pytest.fixture(scope="module")
def specs():
    return [spec_by_name(name) for name in NAMES]


@pytest.fixture(scope="module")
def sequential_rows(specs):
    return [run_flow(spec.build(), n_vectors=512) for spec in specs]


class TestParity:
    def test_parallel_matches_sequential_run_flow(self, specs, sequential_rows):
        batch = run_many(specs, FAST, jobs=4)
        assert batch.n_ok == len(specs)
        for legacy, item in zip(sequential_rows, batch.items):
            assert item.ok
            assert item.result.row() == legacy.row()
            assert dict(item.result.ma.assignment) == dict(legacy.ma.assignment)
            assert dict(item.result.mp.assignment) == dict(legacy.mp.assignment)

    def test_inline_matches_parallel(self, specs):
        inline = run_many(specs, FAST, jobs=1)
        parallel = run_many(specs, FAST, jobs=3)
        assert [i.result.row() for i in inline.items] == [
            i.result.row() for i in parallel.items
        ]

    def test_results_in_input_order(self, specs):
        batch = run_many(list(reversed(specs)), FAST, jobs=3)
        assert [item.name for item in batch.items] == list(reversed(NAMES))
        assert [r.name for r in batch.results] == list(reversed(NAMES))


class TestErrorIsolation:
    def test_one_bad_blif_does_not_kill_the_batch(self, specs, tmp_path):
        bad = tmp_path / "bad.blif"
        bad.write_text(".model bad\n.inputs a\n.outputs z\n.names a b z\n11 1\n.end\n")
        missing = str(tmp_path / "missing.blif")
        batch = run_many([specs[0], str(bad), missing, specs[1]], FAST, jobs=2)
        assert batch.n_ok == 2 and batch.n_failed == 2
        assert [item.ok for item in batch.items] == [True, False, False, True]
        assert "unknown fanin" in batch.items[1].error
        assert "missing.blif" in batch.items[2].error
        # the good circuits are unaffected
        assert batch.items[0].result.row()["ckt"] == "frg1"

    def test_all_failed(self, tmp_path):
        batch = run_many([str(tmp_path / "a.blif")], FAST)
        assert batch.n_ok == 0 and batch.n_failed == 1
        assert batch.results == []

    def test_format_batch_lists_failures(self, specs, tmp_path):
        batch = run_many([specs[0], str(tmp_path / "gone.blif")], FAST, jobs=2)
        text = format_batch(batch)
        assert "failed circuits (1/2)" in text
        assert "gone" in text
        assert "1/2 circuits ok" in text


class TestBatchApi:
    def test_progress_callback(self, specs):
        seen = []
        run_many(specs, FAST, jobs=2, progress=lambda d, t, it: seen.append((d, t, it.name, it.ok)))
        assert sorted(d for d, _, _, _ in seen) == [1, 2, 3]
        assert {name for _, _, name, _ in seen} == set(NAMES)
        assert all(t == 3 and ok for _, t, _, ok in seen)

    def test_blif_paths_and_networks_mix(self, specs, tmp_path):
        path = tmp_path / "frg1.blif"
        save_blif(specs[0].build(), str(path))
        batch = run_many([str(path), specs[1].build()], FAST, jobs=2)
        assert batch.n_ok == 2
        assert [item.name for item in batch.items] == ["frg1", "apex7"]

    def test_per_item_configs(self, specs):
        configs = [FAST, FAST.replace(seed=1), FAST.replace(seed=2)]
        batch = run_many(specs, configs=configs, jobs=2)
        assert [item.config.seed for item in batch.items] == [0, 1, 2]
        assert batch.n_ok == 3

    def test_configs_length_mismatch(self, specs):
        with pytest.raises(BatchError, match="configs length"):
            run_many(specs, configs=[FAST])

    def test_bad_jobs(self, specs):
        with pytest.raises(BatchError, match="jobs"):
            run_many(specs, FAST, jobs=0)

    def test_bad_circuit_type(self):
        with pytest.raises(BatchError, match="cannot interpret"):
            run_many([object()], FAST)

    def test_derive_seed_deterministic(self):
        assert derive_seed(0, "frg1") == derive_seed(0, "frg1")
        assert derive_seed(0, "frg1") != derive_seed(0, "apex7")
        assert derive_seed(0, "frg1") != derive_seed(1, "frg1")
        assert 0 <= derive_seed(12345, "x1") < 2**31

    def test_per_circuit_seeds_applied(self, specs):
        batch = run_many(specs[:2], FAST, per_circuit_seeds=True)
        assert [item.config.seed for item in batch.items] == [
            derive_seed(0, "frg1"),
            derive_seed(0, "apex7"),
        ]


class TestBatchReports:
    @pytest.fixture(scope="class")
    def mixed_batch(self, specs, tmp_path_factory) -> BatchResult:
        missing = str(tmp_path_factory.mktemp("b") / "missing.blif")
        return run_many([specs[0], missing], FAST, jobs=2)

    def test_records_keep_failures(self, mixed_batch):
        records = batch_to_records(mixed_batch)
        assert len(records) == 2
        assert records[0]["ckt"] == "frg1" and "error" not in records[0]
        assert records[1]["ckt"] == "missing" and "traceback" in records[1]
        assert all("runtime_s" in r and "seed" in r for r in records)

    def test_save_batch_json(self, mixed_batch, tmp_path):
        path = tmp_path / "batch.json"
        save_batch(mixed_batch, str(path))
        data = json.loads(path.read_text())
        assert len(data) == 2 and data[1]["error"]

    def test_save_batch_csv_keeps_successes(self, mixed_batch, tmp_path):
        path = tmp_path / "batch.csv"
        save_batch(mixed_batch, str(path))
        text = path.read_text()
        assert "frg1" in text and "missing" not in text


class TestProgressIsolation:
    def test_raising_callback_does_not_abort_parallel_batch(self, specs):
        def bad_subscriber(done, total, item):
            raise RuntimeError("disconnected stream consumer")

        with pytest.warns(RuntimeWarning, match="progress callback failed"):
            batch = run_many(specs[:2], FAST, jobs=2, progress=bad_subscriber)
        assert batch.n_ok == 2  # every circuit still completed

    def test_raising_callback_does_not_abort_inline_batch(self, specs):
        calls = []

        def bad_subscriber(done, total, item):
            calls.append(item.name)
            raise RuntimeError("boom")

        with pytest.warns(RuntimeWarning, match="progress callback failed"):
            batch = run_many(specs[:2], FAST, jobs=1, progress=bad_subscriber)
        assert batch.n_ok == 2
        assert len(calls) == 2  # the callback kept being invoked
