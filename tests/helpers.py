"""Shared, importable test helpers.

Plain module (not a conftest) so test files can import it without
relying on pytest's rootdir-relative ``conftest`` module name, which
collides with ``benchmarks/conftest.py`` when both directories are
collected in one run.
"""

from __future__ import annotations

import itertools


def all_input_vectors(names):
    """All boolean assignments over the given input names."""
    for bits in itertools.product([False, True], repeat=len(names)):
        yield dict(zip(names, bits))
