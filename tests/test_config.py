"""Tests for FlowConfig: round-trips, validation, derivation."""

import dataclasses

import pytest

from repro.core.config import POWER_METHODS, FlowConfig
from repro.domino.gates import DEFAULT_LIBRARY, DominoCellLibrary
from repro.errors import ConfigError, ReproError
from repro.power.estimator import DominoPowerModel


class TestDefaults:
    def test_defaults_match_legacy_run_flow_signature(self):
        cfg = FlowConfig()
        assert cfg.input_probability == 0.5
        assert cfg.input_probs is None
        assert cfg.model is None and cfg.library is None
        assert not cfg.timed
        assert cfg.timing_slack_fraction == 0.85
        assert cfg.power_method == "auto"
        assert cfg.area_exhaustive_limit == 12
        assert cfg.power_exhaustive_limit == 10
        assert cfg.max_pairs is None
        assert cfg.n_vectors == 4096
        assert cfg.seed == 0
        assert cfg.current_scale == 0.01
        assert cfg.minimize and not cfg.strash

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FlowConfig().seed = 1  # type: ignore[misc]

    def test_resolved_model_derived_from_library(self):
        model = FlowConfig().resolved_model()
        assert model.gate_cap == DEFAULT_LIBRARY.gate_output_cap
        assert model.inverter_cap == DEFAULT_LIBRARY.inverter_cap
        assert model.clock_cap_per_gate == DEFAULT_LIBRARY.clock_cap

    def test_explicit_model_wins(self):
        model = DominoPowerModel(gate_cap=3.0)
        assert FlowConfig(model=model).resolved_model() is model


class TestRoundTrip:
    def test_dict_round_trip_defaults(self):
        cfg = FlowConfig()
        assert FlowConfig.from_dict(cfg.to_dict()) == cfg

    def test_dict_round_trip_nested(self):
        cfg = FlowConfig(
            input_probs={"a": 0.25, "b": 0.75},
            model=DominoPowerModel(gate_cap=2.0, and_series_penalty=0.1),
            library=DominoCellLibrary(max_and_fanin=3),
            timed=True,
            max_pairs=50,
            seed=17,
            strash=True,
        )
        again = FlowConfig.from_dict(cfg.to_dict())
        assert again == cfg
        assert again.model == cfg.model
        assert again.library.max_and_fanin == 3

    def test_json_round_trip(self):
        cfg = FlowConfig(n_vectors=512, timed=True, input_probs={"x": 0.1})
        assert FlowConfig.from_json(cfg.to_json()) == cfg

    def test_to_dict_is_json_plain(self):
        import json

        text = json.dumps(FlowConfig(model=DominoPowerModel()).to_dict())
        assert "gate_cap" in text

    def test_from_file(self, tmp_path):
        path = tmp_path / "cfg.json"
        cfg = FlowConfig(seed=9)
        path.write_text(cfg.to_json())
        assert FlowConfig.from_file(str(path)) == cfg

    def test_from_file_missing(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            FlowConfig.from_file(str(tmp_path / "nope.json"))

    def test_from_json_invalid(self):
        with pytest.raises(ConfigError, match="invalid JSON"):
            FlowConfig.from_json("{not json")


class TestValidation:
    def test_config_error_is_repro_error(self):
        assert issubclass(ConfigError, ReproError)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"input_probability": 1.5}, "input_probability"),
            ({"input_probability": -0.1}, "input_probability"),
            ({"input_probs": {"a": 2.0}}, "input_probs"),
            ({"timing_slack_fraction": 0.0}, "timing_slack_fraction"),
            ({"timing_slack_fraction": 1.5}, "timing_slack_fraction"),
            ({"power_method": "quantum"}, "power_method"),
            ({"area_exhaustive_limit": -1}, "area_exhaustive_limit"),
            ({"power_exhaustive_limit": -2}, "power_exhaustive_limit"),
            ({"max_pairs": -1}, "max_pairs"),
            ({"n_vectors": 0}, "n_vectors"),
            ({"seed": "zero"}, "seed"),
            ({"current_scale": 0.0}, "current_scale"),
        ],
    )
    def test_bad_values_raise(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            FlowConfig(**kwargs)

    def test_unknown_dict_key(self):
        with pytest.raises(ConfigError, match="unknown FlowConfig field"):
            FlowConfig.from_dict({"n_vector": 100})

    def test_unknown_nested_key(self):
        with pytest.raises(ConfigError, match="unknown model field"):
            FlowConfig.from_dict({"model": {"gate_capp": 1.0}})

    def test_non_mapping(self):
        with pytest.raises(ConfigError, match="mapping"):
            FlowConfig.from_dict([1, 2, 3])  # type: ignore[arg-type]

    def test_power_methods_constant(self):
        for method in POWER_METHODS:
            FlowConfig(power_method=method)


class TestReplace:
    def test_replace_changes_and_revalidates(self):
        cfg = FlowConfig().replace(seed=5, timed=True)
        assert cfg.seed == 5 and cfg.timed
        with pytest.raises(ConfigError):
            FlowConfig().replace(n_vectors=-1)

    def test_replace_unknown_field(self):
        with pytest.raises(ConfigError, match="unknown FlowConfig field"):
            FlowConfig().replace(vectors=100)

    def test_cache_key_stable_and_selective(self):
        base = FlowConfig()
        assert base.cache_key() == FlowConfig().cache_key()
        # downstream-only knobs don't perturb the shared-artefact key
        assert base.cache_key() == base.replace(timed=True).cache_key()
        assert base.cache_key() == base.replace(current_scale=1.0).cache_key()
        # upstream knobs do
        assert base.cache_key() != base.replace(seed=1).cache_key()
        assert base.cache_key() != base.replace(strash=True).cache_key()
