"""More property-based tests: strash, QM minimisation, glitch model,
timing model, and the estimator under random electrical models."""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.network.minimize import minimize_cover, prime_implicants, _cube_minterms
from repro.network.netlist import GateType, LogicNetwork, SopCover
from repro.network.ops import networks_equivalent
from repro.network.strash import structural_hash
from repro.network.duplication import phase_transform
from repro.phase import PhaseAssignment
from repro.power.estimator import DominoPowerModel, PhaseEvaluator, estimate_power
from repro.power.glitch import domino_glitch_check

from test_properties import aoi_networks, SETTINGS


class TestStrashProperties:
    @SETTINGS
    @given(net=aoi_networks())
    def test_strash_preserves_function(self, net):
        result = structural_hash(net)
        assert networks_equivalent(net, result.network, exhaustive_limit=6, n_vectors=64)

    @SETTINGS
    @given(net=aoi_networks())
    def test_strash_never_grows(self, net):
        result = structural_hash(net)
        assert len(result.network.nodes) <= len(net.nodes)

    @SETTINGS
    @given(net=aoi_networks())
    def test_strash_idempotent(self, net):
        once = structural_hash(net)
        twice = structural_hash(once.network)
        assert twice.merged == 0


@st.composite
def sop_covers(draw, n_vars=4):
    n_cubes = draw(st.integers(0, 6))
    cubes = [
        "".join(draw(st.sampled_from("01-")) for _ in range(n_vars))
        for _ in range(n_cubes)
    ]
    output_value = draw(st.sampled_from(["0", "1"]))
    return SopCover(cubes=cubes, output_value=output_value), n_vars


class TestMinimizeProperties:
    @SETTINGS
    @given(data=sop_covers())
    def test_minimised_cover_equivalent(self, data):
        cover, n = data
        result = minimize_cover(cover, n)
        for bits in itertools.product([False, True], repeat=n):
            assert result.cover.evaluate(bits) == cover.evaluate(bits)

    @SETTINGS
    @given(data=sop_covers())
    def test_minimised_never_more_cubes(self, data):
        cover, n = data
        result = minimize_cover(cover, n)
        assert result.minimized_cubes <= max(result.original_cubes, 1) or (
            cover.output_value == "0"
        )

    @SETTINGS
    @given(
        minterms=st.sets(st.integers(0, 15), max_size=16),
    )
    def test_primes_cover_exactly_the_onset(self, minterms):
        primes = prime_implicants(set(minterms), 4)
        covered = set()
        for p in primes:
            covered |= set(_cube_minterms(p))
        assert covered == set(minterms)


class TestDominoMonotonicityProperty:
    @SETTINGS
    @given(net=aoi_networks(max_inputs=5, max_gates=10), bits=st.integers(0, 15))
    def test_every_implementation_is_glitch_free(self, net, bits):
        a = PhaseAssignment.from_bits(
            net.output_names(), bits % (1 << len(net.outputs))
        )
        impl = phase_transform(net, a)
        assert domino_glitch_check(impl, n_cycles=32, seed=0)


class TestEstimatorModelProperties:
    @SETTINGS
    @given(
        net=aoi_networks(max_inputs=5, max_gates=10),
        gate_cap=st.floats(0.1, 3.0),
        clock=st.floats(0.0, 1.0),
        penalty=st.floats(0.0, 0.5),
    )
    def test_fast_equals_direct_under_random_models(
        self, net, gate_cap, clock, penalty
    ):
        model = DominoPowerModel(
            gate_cap=gate_cap,
            clock_cap_per_gate=clock,
            and_series_penalty=penalty,
        )
        ev = PhaseEvaluator(net, model=model, method="bdd")
        a = PhaseAssignment.all_negative(net.output_names())
        direct = estimate_power(net, a, model=model, method="bdd")
        assert ev.power(a) == pytest.approx(direct.total)

    @SETTINGS
    @given(net=aoi_networks(max_inputs=5, max_gates=10))
    def test_power_nonnegative_and_bounded(self, net):
        ev = PhaseEvaluator(net, method="bdd")
        for bits in range(min(1 << len(net.outputs), 8)):
            a = PhaseAssignment.from_bits(net.output_names(), bits)
            b = ev.breakdown(a)
            assert b.total >= 0.0
            # Each gate contributes at most its capacitance (p <= 1).
            assert b.domino <= b.n_gates * 1.0 + 1e-9
