"""Tests for the Quine-McCluskey two-level minimiser."""

import itertools

import pytest

from repro.network.blif import parse_blif
from repro.network.minimize import (
    MinimizationResult,
    minimize_cover,
    minimize_network,
    minimum_cover,
    prime_implicants,
    _cube_minterms,
    _merge_cubes,
)
from repro.network.netlist import GateType, LogicNetwork, SopCover
from repro.network.ops import networks_equivalent

from helpers import all_input_vectors


class TestCubeOps:
    def test_minterms_of_full_cube(self):
        assert set(_cube_minterms("11")) == {3}

    def test_minterms_with_dont_cares(self):
        assert set(_cube_minterms("1-")) == {1, 3}
        assert set(_cube_minterms("--")) == {0, 1, 2, 3}

    def test_merge_adjacent(self):
        assert _merge_cubes("110", "100") == "1-0"

    def test_merge_requires_single_difference(self):
        assert _merge_cubes("110", "001") is None

    def test_merge_respects_dashes(self):
        assert _merge_cubes("1-0", "110") is None
        assert _merge_cubes("1-0", "1-1") == "1--"


class TestPrimeImplicants:
    def test_classic_example(self):
        # f = sum m(0,1,2,5,6,7) over 3 vars (LSB-first indexing).
        minterms = {0, 1, 2, 5, 6, 7}
        primes = prime_implicants(minterms, 3)
        covered = set()
        for p in primes:
            covered |= set(_cube_minterms(p))
        assert minterms <= covered
        # Prime implicants must not cover off-set minterms... they may
        # (QM primes only cover the on-set by construction here).
        assert covered == minterms

    def test_tautology(self):
        primes = prime_implicants(set(range(8)), 3)
        assert primes == ["---"]

    def test_empty(self):
        assert prime_implicants(set(), 3) == []


class TestMinimumCover:
    def test_cover_is_complete(self):
        minterms = {0, 1, 2, 5, 6, 7}
        primes = prime_implicants(minterms, 3)
        cover = minimum_cover(minterms, primes)
        covered = set()
        for p in cover:
            covered |= set(_cube_minterms(p))
        assert minterms <= covered

    def test_essential_primes_selected(self):
        # f = m(0,1,3): '0-' (covers 0,1... LSB-first: cube index 0 is
        # var0) — just check minimality of cube count.
        minterms = {0, 1, 3}
        primes = prime_implicants(minterms, 2)
        cover = minimum_cover(minterms, primes)
        assert len(cover) == 2


class TestMinimizeCover:
    def test_redundant_cubes_removed(self):
        # f = a OR (a AND b): one cube suffices.
        cover = SopCover(cubes=["1-", "11"], output_value="1")
        result = minimize_cover(cover, 2)
        assert result.minimized_cubes == 1
        assert result.improved

    def test_offset_cover_converted(self):
        # off-set {11} == on-set {00, 01, 10} == NOT(a AND b).
        cover = SopCover(cubes=["11"], output_value="0")
        result = minimize_cover(cover, 2)
        assert result.cover.output_value == "1"
        on = set()
        for cube in result.cover.cubes:
            on |= set(_cube_minterms(cube))
        assert on == {0, 1, 2}

    def test_too_many_inputs_untouched(self):
        cover = SopCover(cubes=["1" * 20], output_value="1")
        result = minimize_cover(cover, 20, max_inputs=12)
        assert result.cover is cover

    def test_function_preserved(self):
        cover = SopCover(cubes=["110", "100", "111", "011"], output_value="1")
        result = minimize_cover(cover, 3)
        for bits in itertools.product([False, True], repeat=3):
            assert result.cover.evaluate(bits) == cover.evaluate(bits)


class TestMinimizeNetwork:
    def _sop_net(self, cubes, output_value="1", n=3):
        net = LogicNetwork("m")
        pis = [f"i{k}" for k in range(n)]
        for pi in pis:
            net.add_input(pi)
        net.add_gate("f", GateType.SOP, pis, cover=SopCover(cubes, output_value))
        net.add_output("f")
        return net

    def test_equivalence(self):
        net = self._sop_net(["110", "100", "111", "011"])
        out = minimize_network(net)
        assert networks_equivalent(net, out)

    def test_unused_fanins_dropped(self):
        # f = i0 regardless of i1/i2.
        net = self._sop_net(["1--", "11-", "1-1"])
        out = minimize_network(net)
        assert out.nodes["f"].fanins == ["i0"]

    def test_constant_collapse(self):
        net = self._sop_net(["---"])
        out = minimize_network(net)
        # Tautology: QM reduces to '---' over zero used fanins — the
        # node becomes const1 or keeps a single all-dash cube.
        assert out.evaluate_outputs({"i0": False, "i1": False, "i2": False})["f"]

    def test_empty_onset_collapses_to_const0(self):
        net = self._sop_net([])
        out = minimize_network(net)
        assert out.nodes["f"].gate_type is GateType.CONST0

    def test_blif_pipeline(self):
        text = (
            ".model m\n.inputs a b c\n.outputs f\n"
            ".names a b c f\n110 1\n100 1\n111 1\n011 1\n.end\n"
        )
        net = parse_blif(text)
        out = minimize_network(net)
        assert networks_equivalent(net, out)
        assert len(out.nodes["f"].cover.cubes) <= 4

    def test_gate_nodes_untouched(self, simple_and_or):
        out = minimize_network(simple_and_or)
        assert networks_equivalent(simple_and_or, out)
