"""Tests for the pluggable optimizer-strategy subsystem (repro.optimize)."""

import json
import os

import pytest

from repro.core.batch import point_config, sweep
from repro.core.config import FlowConfig
from repro.core.optimizer import minimize_power, random_search
from repro.core.pipeline import Pipeline
from repro.errors import ConfigError
from repro.optimize import (
    BUDGET_KEYS,
    OptimizationResult,
    OptimizerBudget,
    OptimizerStrategy,
    get_strategy_class,
    make_strategy,
    register_strategy,
    split_budget_params,
    strategy_names,
    unregister_strategy,
)
from repro.phase import PhaseAssignment, enumerate_assignments
from repro.power.estimator import PhaseEvaluator

#: Built-ins the issue demands (≥ 4, pairwise the default).
BUILTIN_STRATEGIES = (
    "anneal",
    "exhaustive",
    "greedy-flip",
    "groupwise",
    "pairwise",
    "random",
)

#: Cheap, loop-forcing params per strategy for exhaustive sweeps in tests.
CHEAP_PARAMS = {
    "pairwise": {"exhaustive_limit": 0},
    "anneal": {"steps": 24},
    "random": {"n_samples": 12},
    "greedy-flip": {"restarts": 2},
}


@pytest.fixture
def fig3_evaluator(fig3_aoi):
    return PhaseEvaluator(
        fig3_aoi, input_probs={pi: 0.9 for pi in fig3_aoi.inputs}, method="bdd"
    )


@pytest.fixture
def medium_evaluator(medium_random):
    return PhaseEvaluator(medium_random, method="bdd")


# ----------------------------------------------------------------------
# registry


class TestRegistry:
    def test_builtins_registered(self):
        assert strategy_names() == BUILTIN_STRATEGIES

    def test_unknown_name_raises_configerror_listing_registered(self):
        with pytest.raises(ConfigError) as excinfo:
            get_strategy_class("does-not-exist")
        msg = str(excinfo.value)
        assert "does-not-exist" in msg
        assert "pairwise" in msg  # lists what exists

    def test_unknown_param_raises_configerror_naming_it(self):
        with pytest.raises(ConfigError) as excinfo:
            make_strategy("pairwise", not_a_knob=3)
        msg = str(excinfo.value)
        assert "not_a_knob" in msg and "pairwise" in msg

    @pytest.mark.parametrize(
        "name,params",
        [
            ("pairwise", {"exhaustive_limit": -1}),
            ("pairwise", {"max_pairs": -2}),
            ("groupwise", {"group_size": 1}),
            ("greedy-flip", {"restarts": 0}),
            ("anneal", {"steps": 0}),
            ("anneal", {"initial_temp": 0.0}),
            ("anneal", {"cooling": 1.0}),
            ("random", {"n_samples": 0}),
        ],
    )
    def test_bad_param_values_raise_configerror(self, name, params):
        with pytest.raises(ConfigError):
            make_strategy(name, **params)

    def test_duplicate_registration_raises(self):
        with pytest.raises(ConfigError):
            register_strategy("pairwise")(get_strategy_class("anneal"))

    def test_non_strategy_class_rejected(self):
        with pytest.raises(ConfigError):
            register_strategy("not-a-strategy")(dict)

    def test_custom_strategy_registers_and_flows(self, fig3_evaluator):
        from dataclasses import dataclass

        @register_strategy("all-negative")
        @dataclass(frozen=True)
        class AllNegative(OptimizerStrategy):
            def optimize(self, evaluator, *, initial=None, budget=None, seed=0):
                start = initial or PhaseAssignment.all_positive(evaluator.outputs)
                initial_power = evaluator.power(start)
                cand = PhaseAssignment.all_negative(evaluator.outputs)
                power = evaluator.power(cand)
                if power >= initial_power:
                    cand, power = start, initial_power
                return OptimizationResult(
                    assignment=cand,
                    power=power,
                    initial_power=initial_power,
                    method="all-negative",
                    evaluations=2,
                    strategy=self.name,
                )

        try:
            assert "all-negative" in strategy_names()
            # immediately selectable via config + pipeline
            config = FlowConfig(optimizer="all-negative", n_vectors=256)
            result = make_strategy("all-negative").optimize(fig3_evaluator)
            assert result.strategy == "all-negative"
            assert result.power <= result.initial_power
            assert config.optimizer_key()[0] == "all-negative"
        finally:
            unregister_strategy("all-negative")
        with pytest.raises(ConfigError):
            FlowConfig(optimizer="all-negative")

    def test_params_introspection(self):
        strategy = make_strategy("anneal", steps=9)
        assert strategy.params() == {
            "steps": 9,
            "initial_temp": 0.1,
            "cooling": 0.97,
        }


# ----------------------------------------------------------------------
# budget


class TestBudget:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_evaluations": 0},
            {"max_evaluations": True},
            {"max_evaluations": 2.5},
            {"max_seconds": 0},
            {"max_seconds": -1.0},
            {"tolerance": 1.0},
            {"tolerance": -0.1},
            {"tolerance": "big"},
        ],
    )
    def test_invalid_budget_raises(self, kwargs):
        with pytest.raises(ConfigError):
            OptimizerBudget(**kwargs)

    def test_split_budget_params(self):
        budget, rest = split_budget_params(
            {"max_evaluations": 8, "tolerance": 0.1, "restarts": 3}
        )
        assert budget == OptimizerBudget(max_evaluations=8, tolerance=0.1)
        assert rest == {"restarts": 3}
        assert set(BUDGET_KEYS) == {"max_evaluations", "max_seconds", "tolerance"}

    @pytest.mark.parametrize("name", BUILTIN_STRATEGIES)
    def test_max_evaluations_is_a_hard_cap(self, name, medium_evaluator):
        budget = OptimizerBudget(max_evaluations=5)
        strategy = make_strategy(name, **CHEAP_PARAMS.get(name, {}))
        result = strategy.optimize(medium_evaluator, budget=budget, seed=0)
        assert 1 <= result.evaluations <= 5
        assert result.power <= result.initial_power

    @pytest.mark.parametrize("name", BUILTIN_STRATEGIES)
    def test_exhausted_wall_clock_stops_after_first_evaluation(
        self, name, medium_evaluator
    ):
        budget = OptimizerBudget(max_seconds=1e-9)
        strategy = make_strategy(name, **CHEAP_PARAMS.get(name, {}))
        result = strategy.optimize(medium_evaluator, budget=budget, seed=0)
        assert result.evaluations == 1
        assert result.power == result.initial_power

    def test_huge_tolerance_freezes_the_pairwise_loop(self, medium_evaluator):
        strategy = make_strategy("pairwise", exhaustive_limit=0)
        result = strategy.optimize(
            medium_evaluator, budget=OptimizerBudget(tolerance=0.99), seed=0
        )
        # no candidate can beat the incumbent by 99%, so nothing commits
        assert result.power == result.initial_power
        assert all(not record.committed for record in result.history)

    def test_zero_tolerance_is_bit_identical_to_no_budget(self, medium_evaluator):
        strategy = make_strategy("pairwise", exhaustive_limit=0)
        free = strategy.optimize(medium_evaluator, seed=0)
        budgeted = strategy.optimize(
            medium_evaluator, budget=OptimizerBudget(tolerance=0.0), seed=0
        )
        assert free.assignment == budgeted.assignment
        assert free.power == budgeted.power
        assert free.evaluations == budgeted.evaluations


# ----------------------------------------------------------------------
# strategies


class TestStrategies:
    @pytest.mark.parametrize("name", BUILTIN_STRATEGIES)
    def test_never_worse_than_start_and_labelled(self, name, medium_evaluator):
        strategy = make_strategy(name, **CHEAP_PARAMS.get(name, {}))
        result = strategy.optimize(medium_evaluator, seed=0)
        assert result.power <= result.initial_power
        assert result.strategy == name
        assert result.evaluations >= 1

    @pytest.mark.parametrize("name", BUILTIN_STRATEGIES)
    def test_deterministic_for_fixed_seed(self, name, medium_evaluator):
        strategy = make_strategy(name, **CHEAP_PARAMS.get(name, {}))
        a = strategy.optimize(medium_evaluator, seed=3)
        b = strategy.optimize(medium_evaluator, seed=3)
        assert a.assignment == b.assignment
        assert a.power == b.power
        assert a.evaluations == b.evaluations

    @pytest.mark.parametrize("name", BUILTIN_STRATEGIES)
    def test_initial_point_respected(self, name, medium_evaluator):
        start = PhaseAssignment.random(medium_evaluator.outputs, seed=9)
        strategy = make_strategy(name, **CHEAP_PARAMS.get(name, {}))
        result = strategy.optimize(medium_evaluator, initial=start, seed=0)
        assert result.initial_power == pytest.approx(
            medium_evaluator.power(start)
        )
        assert result.power <= result.initial_power

    def test_exhaustive_is_global_optimum(self, fig3_evaluator):
        result = make_strategy("exhaustive").optimize(fig3_evaluator)
        best = min(
            fig3_evaluator.power(a)
            for a in enumerate_assignments(fig3_evaluator.outputs)
        )
        assert result.power == pytest.approx(best)

    def test_pairwise_degenerates_to_exhaustive_below_limit(self, fig3_evaluator):
        pairwise = make_strategy("pairwise", exhaustive_limit=10)
        exhaustive = make_strategy("exhaustive")
        a = pairwise.optimize(fig3_evaluator)
        b = exhaustive.optimize(fig3_evaluator)
        assert a.method == "exhaustive"  # the paper's frg1 usage
        assert a.strategy == "pairwise"
        assert a.assignment == b.assignment
        assert a.power == b.power
        assert a.evaluations == b.evaluations

    def test_pairwise_loop_matches_legacy_keyword_api(self, medium_evaluator):
        new = make_strategy("pairwise", exhaustive_limit=0).optimize(
            medium_evaluator
        )
        legacy = minimize_power(medium_evaluator, method="pairwise")
        assert new.assignment == legacy.assignment
        assert new.power == legacy.power
        assert new.evaluations == legacy.evaluations
        assert [r.committed for r in new.history] == [
            r.committed for r in legacy.history
        ]

    def test_random_matches_legacy_random_search(self, medium_evaluator):
        new = make_strategy("random", n_samples=16).optimize(
            medium_evaluator, seed=5
        )
        legacy = random_search(medium_evaluator, n_samples=16, seed=5)
        assert new.assignment == legacy.assignment
        assert new.power == legacy.power
        assert new.evaluations == legacy.evaluations

    def test_greedy_flip_ends_in_a_single_flip_local_minimum(
        self, medium_evaluator
    ):
        result = make_strategy("greedy-flip", restarts=2).optimize(
            medium_evaluator, seed=0
        )
        for po in medium_evaluator.outputs:
            flipped = result.assignment.flipped(po)
            assert medium_evaluator.power(flipped) >= result.power

    def test_groupwise_single_output_stays_groupwise(self):
        # the legacy _groupwise ran its group loop even for one output
        # (single-member group, cost-preferred move only) — the strategy
        # must not silently reroute tiny circuits to the pairwise search
        from repro.network.netlist import GateType, LogicNetwork

        net = LogicNetwork("one")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g", GateType.OR, ["a", "b"])
        net.add_output("g")
        ev = PhaseEvaluator(net, input_probs={"a": 0.9, "b": 0.9}, method="bdd")
        result = make_strategy("groupwise", group_size=3).optimize(ev)
        assert result.method == "groupwise-3"
        assert result.strategy == "groupwise"
        legacy = minimize_power(ev, method="pairwise", group_size=3)
        assert legacy.assignment == result.assignment
        assert legacy.power == result.power
        assert legacy.evaluations == result.evaluations

    def test_groupwise_reports_group_size(self, medium_evaluator):
        result = make_strategy("groupwise", group_size=3).optimize(
            medium_evaluator
        )
        assert result.method == "groupwise-3"
        assert result.power <= result.initial_power

    def test_anneal_tracks_best_seen(self, medium_evaluator):
        result = make_strategy("anneal", steps=64).optimize(
            medium_evaluator, seed=1
        )
        # the returned power really is the power of the returned assignment
        assert medium_evaluator.power(result.assignment) == pytest.approx(
            result.power
        )

    def test_anneal_tolerance_stops_a_stalled_walk(self, medium_evaluator):
        strategy = make_strategy("anneal", steps=400)
        free = strategy.optimize(medium_evaluator, seed=1)
        stalled = strategy.optimize(
            medium_evaluator, budget=OptimizerBudget(tolerance=0.5), seed=1
        )
        # demanding 50% jumps, the walk stalls long before 400 steps
        assert stalled.evaluations < free.evaluations
        assert stalled.power <= stalled.initial_power


# ----------------------------------------------------------------------
# FlowConfig plumbing


class TestConfigPlumbing:
    def test_defaults(self):
        config = FlowConfig()
        assert config.optimizer == "pairwise"
        assert config.optimizer_params is None
        strategy, budget = config.resolved_optimizer()
        assert strategy.name == "pairwise"
        assert budget.unlimited and budget.tolerance == 0.0

    def test_legacy_knobs_steer_the_default_strategy(self):
        config = FlowConfig(power_exhaustive_limit=4, max_pairs=7)
        strategy, _ = config.resolved_optimizer()
        assert strategy.exhaustive_limit == 4
        assert strategy.max_pairs == 7

    def test_explicit_params_beat_legacy_knobs(self):
        config = FlowConfig(
            power_exhaustive_limit=4,
            optimizer_params={"exhaustive_limit": 0},
        )
        strategy, _ = config.resolved_optimizer()
        assert strategy.exhaustive_limit == 0

    def test_budget_keys_split_out(self):
        config = FlowConfig(
            optimizer="greedy-flip",
            optimizer_params={"restarts": 3, "max_evaluations": 50},
        )
        strategy, budget = config.resolved_optimizer()
        assert strategy.restarts == 3
        assert budget.max_evaluations == 50

    def test_json_round_trip(self):
        config = FlowConfig(
            optimizer="anneal",
            optimizer_params={"steps": 12, "max_seconds": 2.5},
        )
        restored = FlowConfig.from_json(config.to_json())
        assert restored == config
        assert restored.optimizer_key() == config.optimizer_key()

    def test_unknown_strategy_rejected_at_construction(self):
        with pytest.raises(ConfigError) as excinfo:
            FlowConfig(optimizer="nope")
        assert "nope" in str(excinfo.value)

    def test_unknown_strategy_param_rejected_at_construction(self):
        with pytest.raises(ConfigError) as excinfo:
            FlowConfig(optimizer_params={"stale_knob": 1})
        assert "stale_knob" in str(excinfo.value)

    def test_unknown_strategy_via_json(self):
        with pytest.raises(ConfigError) as excinfo:
            FlowConfig.from_json(json.dumps({"optimizer": "nope"}))
        assert "nope" in str(excinfo.value)

    def test_non_scalar_param_rejected(self):
        with pytest.raises(ConfigError):
            FlowConfig(optimizer_params={"steps": [1, 2]})

    def test_optimizer_in_result_key_not_cache_key(self):
        base = FlowConfig()
        other = FlowConfig(optimizer="greedy-flip")
        params = FlowConfig(optimizer_params={"max_pairs": 3})
        assert base.cache_key() == other.cache_key() == params.cache_key()
        assert base.result_key() != other.result_key()
        assert base.result_key() != params.result_key()
        assert other.result_key() != params.result_key()


# ----------------------------------------------------------------------
# pipeline + store integration


class TestPipelineIntegration:
    VECTORS = 256

    def test_default_pipeline_matches_explicit_pairwise(self, small_random):
        from repro.report import flow_result_to_dict

        default = Pipeline(FlowConfig(n_vectors=self.VECTORS)).run(small_random)
        explicit = Pipeline(
            FlowConfig(n_vectors=self.VECTORS, optimizer="pairwise")
        ).run(small_random)
        assert flow_result_to_dict(default.flow) == flow_result_to_dict(
            explicit.flow
        )
        mp = default.stage("optimize_mp").output
        assert mp.strategy == "pairwise"

    @pytest.mark.parametrize("name", ("greedy-flip", "anneal", "random"))
    def test_alternative_strategies_run_end_to_end(self, small_random, name):
        config = FlowConfig(
            n_vectors=self.VECTORS,
            optimizer=name,
            optimizer_params=dict(CHEAP_PARAMS.get(name, {})),
        )
        run = Pipeline(config).run(small_random)
        assert run.flow is not None
        assert run.stage("optimize_mp").output.strategy == name

    def test_no_cross_strategy_store_hits(self, small_random, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        pairwise = FlowConfig(n_vectors=self.VECTORS)
        greedy = pairwise.replace(
            optimizer="greedy-flip", optimizer_params={"restarts": 2}
        )

        first = Pipeline(pairwise, store=store).run(small_random)
        assert not all(s.cached or s.skipped for s in first.stages)

        # same circuit, different strategy: the whole-run record and the
        # MP assignment must both miss; shared artefacts still hit
        second = Pipeline(greedy, store=store).run(small_random)
        assert not second.stage("optimize_mp").cached
        assert not second.stage("measure").cached
        assert second.stage("prepare").cached  # strategy-independent
        assert second.stage("optimize_ma").cached

        # identical resubmissions are served whole, per strategy
        warm_pairwise = Pipeline(pairwise, store=store).run(small_random)
        warm_greedy = Pipeline(greedy, store=store).run(small_random)
        assert all(s.cached or s.skipped for s in warm_pairwise.stages)
        assert all(s.cached or s.skipped for s in warm_greedy.stages)
        from repro.report import flow_result_to_dict

        assert flow_result_to_dict(warm_pairwise.flow) == flow_result_to_dict(
            first.flow
        )
        assert flow_result_to_dict(warm_greedy.flow) == flow_result_to_dict(
            second.flow
        )
        # two strategies → two distinct archived MP assignments
        assert store.stats().entries.get("assign_mp") == 2

    def test_wall_clock_budget_is_never_store_served(self, small_random, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        config = FlowConfig(
            n_vectors=self.VECTORS,
            optimizer_params={"max_seconds": 3600.0},
        )
        assert not config.optimizer_reproducible()

        first = Pipeline(config, store=store).run(small_random)
        assert first.flow is not None
        # machine-dependent artefacts never persisted...
        stats = store.stats()
        assert stats.entries.get("assign_mp") is None
        assert stats.entries.get("flow") is None
        # ...while the strategy-independent ones are
        assert stats.entries.get("prepare") == 1
        assert stats.entries.get("assign_ma") == 1

        # a rerun recomputes the search instead of being short-circuited
        rerun = Pipeline(config, store=store).run(small_random)
        assert not rerun.stage("optimize_mp").cached
        assert not rerun.stage("measure").cached
        assert Pipeline(config, store=store).cached_flow(small_random) is None

    def test_strategy_survives_the_store_round_trip(self, small_random, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        config = FlowConfig(n_vectors=self.VECTORS)
        Pipeline(config, store=store).run(small_random)
        # different current_scale: measure misses, optimize_mp hits
        rerun = Pipeline(config.replace(current_scale=0.02), store=store).run(
            small_random
        )
        stage = rerun.stage("optimize_mp")
        assert stage.cached
        assert stage.output.strategy == "pairwise"


# ----------------------------------------------------------------------
# sweeps


class TestSweepGrids:
    def test_point_config_direct_and_dotted(self):
        base = FlowConfig(optimizer="greedy-flip", optimizer_params={"restarts": 2})
        derived = point_config(
            base, {"optimizer_params.max_evaluations": 64}
        )
        assert derived.optimizer == "greedy-flip"
        # dotted keys merge, they do not flatten the base params
        assert derived.optimizer_params == {
            "restarts": 2,
            "max_evaluations": 64,
        }

    def test_switching_strategy_drops_foreign_params_keeps_budget(self):
        base = FlowConfig(
            optimizer="anneal",
            optimizer_params={"steps": 64, "max_evaluations": 40},
        )
        derived = point_config(base, {"optimizer": "pairwise"})
        # anneal's steps cannot leak into pairwise; the budget survives
        assert derived.optimizer == "pairwise"
        assert derived.optimizer_params == {"max_evaluations": 40}
        # the same point re-asserting the base strategy keeps everything
        same = point_config(base, {"optimizer": "anneal"})
        assert same.optimizer_params == base.optimizer_params

    def test_strategy_grid_over_a_tuned_base(self, small_random):
        base = FlowConfig(
            n_vectors=256,
            optimizer="anneal",
            optimizer_params={"steps": 16, "max_evaluations": 32},
        )
        result = sweep(
            [small_random], {"optimizer": ["pairwise", "anneal"]}, base
        )
        assert result.n_ok == 2
        assert result.point(optimizer="pairwise").config.optimizer_params == {
            "max_evaluations": 32
        }
        assert result.point(optimizer="anneal").config.optimizer_params == {
            "steps": 16,
            "max_evaluations": 32,
        }

    def test_point_config_bad_keys(self):
        # always ConfigError (the CLI maps it to a clean exit-2 message)
        base = FlowConfig()
        with pytest.raises(ConfigError):
            point_config(base, {"optimizer_params.": 1})
        with pytest.raises(ConfigError):
            point_config(base, {"weird.key": 1})
        with pytest.raises(ConfigError):
            point_config(base, {"not_a_field": 1})
        with pytest.raises(ConfigError):
            point_config(base, {"optimizer": "nope"})

    def test_bad_grid_key_exits_2_from_the_cli(self, blif_file, capsys):
        from repro.cli import main

        rc = main(
            [
                "sweep",
                blif_file,
                "--grid",
                "optimizer-params.steps=4",  # hyphen typo for the prefix
                "--no-progress",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "optimizer-params.steps" in captured.err
        assert "Traceback" not in captured.err

    def test_sweep_over_strategies(self, small_random, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        result = sweep(
            [small_random],
            {"optimizer": ["pairwise", "greedy-flip"]},
            FlowConfig(n_vectors=256),
            store=store,
        )
        assert result.n_points == 2 and result.n_ok == 2
        point = result.point(optimizer="greedy-flip")
        assert point.config.optimizer == "greedy-flip"
        manifest = result.manifest()
        assert manifest["grid"] == {"optimizer": ["pairwise", "greedy-flip"]}
        # both strategies archived separately
        assert store.stats().entries.get("flow") == 2

    def test_sweep_over_dotted_strategy_params(self, small_random):
        result = sweep(
            [small_random],
            {
                "optimizer": ["random"],
                "optimizer_params.n_samples": [4, 16],
            },
            FlowConfig(n_vectors=256),
        )
        assert result.n_points == 2 and result.n_ok == 2
        a = result.point(**{"optimizer_params.n_samples": 4})
        b = result.point(**{"optimizer_params.n_samples": 16})
        assert a.config.optimizer_params == {"n_samples": 4}
        assert b.config.optimizer_params == {"n_samples": 16}
        assert a.config.result_key() != b.config.result_key()


# ----------------------------------------------------------------------
# CLI


@pytest.fixture
def blif_file(tmp_path, small_random):
    from repro.network.blif import save_blif

    path = tmp_path / "small.blif"
    save_blif(small_random, str(path))
    return str(path)


class TestCli:
    def test_every_flow_subcommand_has_the_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a
            for a in parser._actions
            if a.__class__.__name__ == "_SubParsersAction"
        )
        for command in ("synth", "batch", "table1", "table2", "sweep", "serve"):
            options = {
                opt
                for action in sub.choices[command]._actions
                for opt in action.option_strings
            }
            assert {"--optimizer", "--optimizer-param"} <= options, command

    def test_synth_runs_with_strategy_and_params(self, blif_file, capsys):
        from repro.cli import main

        rc = main(
            [
                "synth",
                blif_file,
                "--vectors",
                "128",
                "--optimizer",
                "greedy-flip",
                "--optimizer-param",
                "restarts=2",
                "--optimizer-param",
                "max_evaluations=64",
            ]
        )
        assert rc == 0
        assert "Flow result" in capsys.readouterr().out

    def test_unknown_strategy_exits_2_without_traceback(self, blif_file, capsys):
        from repro.cli import main

        rc = main(["synth", blif_file, "--optimizer", "bogus"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "unknown optimizer strategy 'bogus'" in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_param_exits_2_without_traceback(self, blif_file, capsys):
        from repro.cli import main

        rc = main(
            ["synth", blif_file, "--optimizer-param", "stale_knob=1"]
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "stale_knob" in captured.err
        assert "Traceback" not in captured.err

    def test_malformed_param_spec_exits_2(self, blif_file, capsys):
        from repro.cli import main

        rc = main(["synth", blif_file, "--optimizer-param", "no-equals"])
        assert rc == 2
        assert "no-equals" in capsys.readouterr().err

    def test_cli_params_merge_over_config_file(self, tmp_path, blif_file):
        from repro.cli import _effective_config, build_parser

        config_path = tmp_path / "config.json"
        config_path.write_text(
            FlowConfig(
                optimizer="anneal", optimizer_params={"steps": 8, "cooling": 0.9}
            ).to_json()
        )
        args = build_parser().parse_args(
            [
                "synth",
                blif_file,
                "--config",
                str(config_path),
                "--optimizer-param",
                "steps=32",
            ]
        )
        config = _effective_config(args)
        assert config.optimizer == "anneal"
        # the flag overrides one key without flattening the file's others
        assert config.optimizer_params == {"steps": 32, "cooling": 0.9}

    def test_cli_strategy_switch_drops_foreign_config_file_params(
        self, tmp_path, blif_file
    ):
        from repro.cli import _effective_config, build_parser

        config_path = tmp_path / "config.json"
        config_path.write_text(
            FlowConfig(
                optimizer="anneal",
                optimizer_params={"steps": 8, "max_evaluations": 20},
            ).to_json()
        )
        args = build_parser().parse_args(
            [
                "synth",
                blif_file,
                "--config",
                str(config_path),
                "--optimizer",
                "greedy-flip",
                "--optimizer-param",
                "restarts=3",
            ]
        )
        config = _effective_config(args)
        assert config.optimizer == "greedy-flip"
        # anneal's steps dropped, the shared budget and the new
        # strategy's own param kept
        assert config.optimizer_params == {"max_evaluations": 20, "restarts": 3}

    def test_sweep_cli_over_strategies(self, blif_file, capsys):
        from repro.cli import main

        rc = main(
            [
                "sweep",
                blif_file,
                "--grid",
                "optimizer=pairwise,random",
                "--grid",
                "optimizer_params.max_evaluations=8,32",
                "--vectors",
                "128",
                "--no-progress",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Sweep over 4 point(s)" in out


# ----------------------------------------------------------------------
# golden regression: the default strategy must reproduce the
# pre-refactor flow bit for bit (full-suite byte compare runs in CI's
# optimizer-smoke job; this is the cheap in-repo anchor)


GOLDEN = os.path.join(
    os.path.dirname(__file__), "golden", "table1_quick_v512_pairwise.json"
)


class TestGoldenRegression:
    def test_frg1_matches_pre_refactor_golden(self):
        from repro.experiments.tables import run_table
        from repro.report import flow_result_to_dict

        with open(GOLDEN, "r", encoding="utf-8") as f:
            golden = {row["ckt"]: row for row in json.load(f)}
        result = run_table(circuits=["frg1"], n_vectors=512)
        assert flow_result_to_dict(result.rows[0].flow) == golden["frg1"]
