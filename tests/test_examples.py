"""Smoke tests: every example script must run cleanly end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

SCRIPTS = [
    "quickstart.py",
    "phase_transform_demo.py",
    "sequential_partitioning.py",
    "custom_blif_flow.py",
    "domino_physics_analysis.py",
]

SLOW_SCRIPTS = [
    "low_power_asic_block.py",
    "timing_aware_phases.py",
]


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


@pytest.mark.parametrize("script", SLOW_SCRIPTS)
def test_slow_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_examples_directory_is_documented():
    readme = (EXAMPLES_DIR / "README.md").read_text()
    for script in SCRIPTS + SLOW_SCRIPTS:
        assert script in readme, f"{script} missing from examples/README.md"
