"""Tests for the extended CLI commands (compare, dot, report output)."""

import json

import pytest

from repro.cli import main
from repro.network.blif import save_blif


@pytest.fixture
def blif_file(tmp_path, small_random):
    path = tmp_path / "small.blif"
    save_blif(small_random, str(path))
    return str(path)


class TestCompareCommand:
    def test_compare_output(self, capsys, blif_file):
        assert main(["compare", blif_file]) == 0
        out = capsys.readouterr().out
        assert "domino / static ratio" in out
        assert "duplication factor" in out

    def test_compare_with_probability(self, capsys, blif_file):
        assert main(["compare", blif_file, "--input-probability", "0.9"]) == 0
        assert "static implementation power" in capsys.readouterr().out


class TestDotCommand:
    def test_dot_emits_digraph(self, capsys, blif_file):
        assert main(["dot", blif_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "->" in out

    def test_dot_with_probabilities(self, capsys, blif_file):
        assert main(["dot", blif_file, "--probabilities"]) == 0
        assert "p=" in capsys.readouterr().out


class TestTableOutput:
    def test_table1_writes_json(self, capsys, tmp_path):
        out_path = str(tmp_path / "t1.json")
        assert (
            main(
                [
                    "table1",
                    "--circuits",
                    "frg1",
                    "--vectors",
                    "512",
                    "--output",
                    out_path,
                ]
            )
            == 0
        )
        data = json.loads(open(out_path).read())
        assert data[0]["ckt"] == "frg1"
        assert "mp_assignment" in data[0]

    def test_table1_writes_markdown(self, capsys, tmp_path):
        out_path = str(tmp_path / "t1.md")
        assert (
            main(
                ["table1", "--circuits", "frg1", "--vectors", "512", "--output", out_path]
            )
            == 0
        )
        text = open(out_path).read()
        assert text.startswith("| Ckt |")


class TestFlowOptions:
    def test_flow_with_strash(self, small_random):
        from repro.core.flow import run_flow

        plain = run_flow(small_random, n_vectors=512, seed=0, strash=False)
        hashed = run_flow(small_random, n_vectors=512, seed=0, strash=True)
        # Structural hashing can only shrink or preserve the block.
        assert hashed.ma.size <= plain.ma.size

    def test_flow_minimize_on_blif_network(self, blif_file):
        from repro.core.flow import run_flow
        from repro.network.blif import load_blif

        net = load_blif(blif_file)
        with_min = run_flow(net, n_vectors=512, seed=0, minimize=True)
        without = run_flow(net, n_vectors=512, seed=0, minimize=False)
        # QM minimisation never increases the mapped MA size here.
        assert with_min.ma.size <= without.ma.size + 2
