"""Tests for the extended CLI commands (compare, dot, report output)."""

import json

import pytest

from repro.cli import main
from repro.network.blif import save_blif


@pytest.fixture
def blif_file(tmp_path, small_random):
    path = tmp_path / "small.blif"
    save_blif(small_random, str(path))
    return str(path)


class TestCompareCommand:
    def test_compare_output(self, capsys, blif_file):
        assert main(["compare", blif_file]) == 0
        out = capsys.readouterr().out
        assert "domino / static ratio" in out
        assert "duplication factor" in out

    def test_compare_with_probability(self, capsys, blif_file):
        assert main(["compare", blif_file, "--input-probability", "0.9"]) == 0
        assert "static implementation power" in capsys.readouterr().out


class TestDotCommand:
    def test_dot_emits_digraph(self, capsys, blif_file):
        assert main(["dot", blif_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "->" in out

    def test_dot_with_probabilities(self, capsys, blif_file):
        assert main(["dot", blif_file, "--probabilities"]) == 0
        assert "p=" in capsys.readouterr().out


class TestTableOutput:
    def test_table1_writes_json(self, capsys, tmp_path):
        out_path = str(tmp_path / "t1.json")
        assert (
            main(
                [
                    "table1",
                    "--circuits",
                    "frg1",
                    "--vectors",
                    "512",
                    "--output",
                    out_path,
                ]
            )
            == 0
        )
        data = json.loads(open(out_path).read())
        assert data[0]["ckt"] == "frg1"
        assert "mp_assignment" in data[0]

    def test_table1_writes_markdown(self, capsys, tmp_path):
        out_path = str(tmp_path / "t1.md")
        assert (
            main(
                ["table1", "--circuits", "frg1", "--vectors", "512", "--output", out_path]
            )
            == 0
        )
        text = open(out_path).read()
        assert text.startswith("| Ckt |")


class TestFlowOptions:
    def test_flow_with_strash(self, small_random):
        from repro.core.flow import run_flow

        plain = run_flow(small_random, n_vectors=512, seed=0, strash=False)
        hashed = run_flow(small_random, n_vectors=512, seed=0, strash=True)
        # Structural hashing can only shrink or preserve the block.
        assert hashed.ma.size <= plain.ma.size

    def test_flow_minimize_on_blif_network(self, blif_file):
        from repro.core.flow import run_flow
        from repro.network.blif import load_blif

        net = load_blif(blif_file)
        with_min = run_flow(net, n_vectors=512, seed=0, minimize=True)
        without = run_flow(net, n_vectors=512, seed=0, minimize=False)
        # QM minimisation never increases the mapped MA size here.
        assert with_min.ma.size <= without.ma.size + 2


class TestBatchCommand:
    @pytest.fixture
    def blif_dir(self, tmp_path, small_random, simple_and_or):
        save_blif(small_random, str(tmp_path / "small.blif"))
        save_blif(simple_and_or, str(tmp_path / "simple.blif"))
        (tmp_path / "broken.blif").write_text(
            ".model broken\n.inputs a\n.outputs z\n.names a b z\n11 1\n.end\n"
        )
        return tmp_path

    def test_batch_directory_isolates_failures(self, capsys, blif_dir):
        assert main(
            ["batch", str(blif_dir), "--jobs", "2", "--vectors", "256", "--no-progress"]
        ) == 0
        out = capsys.readouterr().out
        assert "small" in out and "simple" in out
        assert "failed circuits (1/3)" in out
        assert "broken" in out

    def test_batch_all_failed_exits_nonzero(self, capsys, tmp_path):
        assert main(["batch", str(tmp_path / "nope.blif"), "--no-progress"]) == 1

    def test_batch_no_blifs(self, capsys, tmp_path):
        assert main(["batch", str(tmp_path)]) == 1

    def test_batch_writes_report(self, capsys, blif_dir):
        out_path = blif_dir / "report.json"
        assert main(
            [
                "batch",
                str(blif_dir / "small.blif"),
                "--vectors",
                "256",
                "--no-progress",
                "--output",
                str(out_path),
            ]
        ) == 0
        data = json.loads(out_path.read_text())
        assert data[0]["ckt"] == "small"

    def test_bad_output_extension_fails_before_running(self, capsys, blif_dir):
        assert main(
            ["batch", str(blif_dir), "--no-progress", "--output", "report.txt"]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown report format" in err


class TestConfigFlag:
    def test_synth_with_config_file(self, capsys, blif_file, tmp_path):
        from repro.core.config import FlowConfig

        cfg = tmp_path / "cfg.json"
        cfg.write_text(FlowConfig(n_vectors=256).to_json())
        assert main(["synth", blif_file, "--config", str(cfg)]) == 0
        assert "MA assignment" in capsys.readouterr().out

    def test_synth_with_bad_config_exits_2(self, capsys, blif_file, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text('{"n_vector": 5}')
        assert main(["synth", blif_file, "--config", str(cfg)]) == 2
        assert "config error" in capsys.readouterr().err

    def test_synth_flags_override_config(self, capsys, blif_file, tmp_path):
        from repro.core.config import FlowConfig

        cfg = tmp_path / "cfg.json"
        cfg.write_text(FlowConfig(n_vectors=99999).to_json())
        # --vectors overrides the file; the run completing quickly with
        # 256 vectors (rather than 99999) is observable via runtime, but
        # here we just assert the command accepts both sources
        assert main(
            ["synth", blif_file, "--config", str(cfg), "--vectors", "256"]
        ) == 0
