"""Integration tests for the Figure 6 flow and the table experiments."""

import pytest

from repro.bench.generators import GeneratorConfig, random_control_network
from repro.core.flow import format_table, run_flow
from repro.network.ops import networks_equivalent
from repro.network.duplication import implementation_network


@pytest.fixture(scope="module")
def tiny():
    cfg = GeneratorConfig(n_inputs=12, n_outputs=4, n_gates=30, seed=21)
    return random_control_network("tiny", cfg)


@pytest.fixture(scope="module")
def tiny_flow(tiny):
    return run_flow(tiny, n_vectors=2048, seed=0)


class TestRunFlow:
    def test_row_fields(self, tiny_flow):
        row = tiny_flow.row()
        assert row["ckt"] == "tiny"
        assert row["n_pis"] == 12
        assert row["n_pos"] == 4
        assert row["ma_size"] > 0
        assert row["mp_size"] > 0

    def test_mp_estimated_power_not_worse(self, tiny_flow):
        assert tiny_flow.mp.estimated_power <= tiny_flow.ma.estimated_power + 1e-9

    def test_both_variants_functionally_correct(self, tiny, tiny_flow):
        from repro.network.ops import cleanup, to_aoi

        aoi = cleanup(to_aoi(tiny))
        for variant in (tiny_flow.ma, tiny_flow.mp):
            block = implementation_network(variant.implementation)
            assert networks_equivalent(aoi, block, n_vectors=128)

    def test_sizes_match_designs(self, tiny_flow):
        assert tiny_flow.ma.size == tiny_flow.ma.design.standard_cell_count()
        assert tiny_flow.mp.size == tiny_flow.mp.design.standard_cell_count()

    def test_percentages_consistent(self, tiny_flow):
        expected_pen = 100.0 * (tiny_flow.mp.size - tiny_flow.ma.size) / tiny_flow.ma.size
        assert tiny_flow.area_penalty_percent == pytest.approx(expected_pen)

    def test_untimed_has_no_resize(self, tiny_flow):
        assert tiny_flow.ma.resize is None
        assert not tiny_flow.timed

    def test_probability_method_recorded(self, tiny_flow):
        assert tiny_flow.probability_method in ("bdd", "monte-carlo")


class TestTimedFlow:
    def test_timed_flow_resizes(self, tiny):
        result = run_flow(tiny, timed=True, n_vectors=1024, seed=0)
        assert result.timed
        assert result.ma.resize is not None
        assert result.mp.resize is not None
        # Resizing only ever increases the cell area.
        assert result.ma.size >= 1

    def test_timed_critical_delay_positive(self, tiny):
        result = run_flow(tiny, timed=True, n_vectors=512, seed=0)
        assert result.ma.critical_delay > 0


class TestSequentialFlow:
    def test_flow_on_sequential_circuit(self, fig7):
        result = run_flow(fig7, n_vectors=1024, seed=0)
        assert result.ma.size > 0
        assert result.mp.power_ma <= result.ma.power_ma * 1.5


class TestFormatTable:
    def test_format_contains_rows_and_average(self, tiny_flow):
        text = format_table([tiny_flow.row()], "Demo")
        assert "Demo" in text
        assert "tiny" in text
        assert "Average" in text

    def test_format_empty(self):
        text = format_table([], "Empty")
        assert "Empty" in text


class TestTableExperiment:
    def test_run_table_quick_subset(self):
        from repro.experiments.tables import QUICK_CIRCUITS, format_table_result, run_table

        result = run_table(quick=True, circuits=["frg1"], n_vectors=512)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.spec.name == "frg1"
        assert row.paper is not None
        text = format_table_result(result)
        assert "frg1" in text
        assert "Average" in text

    def test_measured_averages(self):
        from repro.experiments.tables import run_table

        result = run_table(circuits=["frg1"], n_vectors=512)
        avg = result.measured_averages
        assert avg["power_savings_pct"] == pytest.approx(
            result.rows[0].flow.power_savings_percent
        )

    def test_paper_averages_by_table(self):
        from repro.experiments.tables import TableResult

        t1 = TableResult(timed=False, rows=[])
        t2 = TableResult(timed=True, rows=[])
        assert t1.paper_averages["power_savings_pct"] == pytest.approx(18.0)
        assert t2.paper_averages["power_savings_pct"] == pytest.approx(35.3)
