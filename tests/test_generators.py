"""Unit tests for the synthetic circuit generators and the suite specs."""

import pytest

from repro.errors import ReproError
from repro.bench.generators import (
    GeneratorConfig,
    ladder_network,
    random_control_network,
    random_sequential_network,
)
from repro.bench.mcnc import (
    TABLE1_SUITE,
    TABLE2_SUITE,
    build_suite,
    spec_by_name,
)
from repro.network.blif import parse_blif, write_blif
from repro.network.ops import networks_equivalent


class TestGeneratorConfig:
    def test_validation_catches_bad_inputs(self):
        with pytest.raises(ReproError):
            GeneratorConfig(n_inputs=1, n_outputs=1, n_gates=5).validate()
        with pytest.raises(ReproError):
            GeneratorConfig(n_inputs=4, n_outputs=0, n_gates=5).validate()
        with pytest.raises(ReproError):
            GeneratorConfig(n_inputs=4, n_outputs=2, n_gates=1).validate()
        with pytest.raises(ReproError):
            GeneratorConfig(n_inputs=4, n_outputs=2, n_gates=5, max_fanin=1).validate()
        with pytest.raises(ReproError):
            GeneratorConfig(
                n_inputs=4, n_outputs=2, n_gates=5, or_probability=1.5
            ).validate()


class TestRandomControlNetwork:
    def test_interface_counts(self):
        cfg = GeneratorConfig(n_inputs=12, n_outputs=5, n_gates=40, seed=0)
        net = random_control_network("t", cfg)
        assert len(net.inputs) == 12
        assert len(net.outputs) == 5

    def test_determinism(self):
        cfg = GeneratorConfig(n_inputs=12, n_outputs=5, n_gates=40, seed=9)
        a = random_control_network("t", cfg)
        b = random_control_network("t", cfg)
        assert write_blif(a) == write_blif(b)

    def test_different_seeds_differ(self):
        c1 = GeneratorConfig(n_inputs=12, n_outputs=5, n_gates=40, seed=1)
        c2 = GeneratorConfig(n_inputs=12, n_outputs=5, n_gates=40, seed=2)
        a = random_control_network("t", c1)
        b = random_control_network("t", c2)
        assert write_blif(a) != write_blif(b)

    def test_network_validates(self):
        cfg = GeneratorConfig(n_inputs=20, n_outputs=9, n_gates=70, seed=4)
        net = random_control_network("t", cfg)
        net.validate()

    def test_combinational(self):
        cfg = GeneratorConfig(n_inputs=8, n_outputs=2, n_gates=12, seed=4)
        assert random_control_network("t", cfg).is_combinational

    def test_no_dead_logic_after_sweep(self):
        from repro.network.ops import sweep_dead_nodes

        cfg = GeneratorConfig(n_inputs=12, n_outputs=4, n_gates=40, seed=8)
        net = random_control_network("t", cfg)
        swept = sweep_dead_nodes(net)
        # Collector roots pull essentially everything into the PO cones.
        assert len(swept.nodes) >= 0.9 * len(net.nodes)

    def test_blif_roundtrip(self):
        cfg = GeneratorConfig(n_inputs=10, n_outputs=3, n_gates=25, seed=13)
        net = random_control_network("t", cfg)
        again = parse_blif(write_blif(net))
        assert networks_equivalent(net, again, n_vectors=128)

    def test_more_outputs_than_gates_per_window(self):
        cfg = GeneratorConfig(
            n_inputs=10, n_outputs=12, n_gates=24, seed=3, outputs_per_window=2
        )
        net = random_control_network("t", cfg)
        assert len(net.outputs) == 12


class TestRandomSequentialNetwork:
    def test_latch_count(self):
        net = random_sequential_network("s", n_inputs=6, n_latches=5, n_gates=20, seed=0)
        assert len(net.latches) == 5

    def test_validates_and_has_outputs(self):
        net = random_sequential_network("s", n_inputs=6, n_latches=4, n_gates=24, seed=1)
        net.validate()
        assert net.outputs

    def test_feedback_exists(self):
        from repro.seq.sgraph import extract_sgraph

        found_cycle = False
        for seed in range(5):
            net = random_sequential_network(
                "s", n_inputs=6, n_latches=6, n_gates=30, seed=seed
            )
            if not extract_sgraph(net).is_acyclic():
                found_cycle = True
                break
        assert found_cycle

    def test_twin_groups_create_symmetry(self):
        from repro.seq.sgraph import extract_sgraph
        from repro.seq.transforms import apply_symmetry_grouping

        merged_any = False
        for seed in range(6):
            net = random_sequential_network(
                "s", n_inputs=6, n_latches=10, n_gates=40, seed=seed, twin_groups=2
            )
            g = extract_sgraph(net)
            if apply_symmetry_grouping(g) > 0:
                merged_any = True
                break
        assert merged_any

    def test_needs_latches(self):
        with pytest.raises(ReproError):
            random_sequential_network("s", n_inputs=4, n_latches=0, n_gates=10)


class TestLadder:
    def test_ladder_structure(self):
        net = ladder_network("l", n_stages=6, invert_every=2)
        assert len(net.inputs) == 7
        assert len(net.outputs) == 1
        net.validate()

    def test_ladder_needs_stage(self):
        with pytest.raises(ReproError):
            ladder_network("l", n_stages=0)


class TestSuite:
    def test_table1_has_seven_circuits(self):
        assert len(TABLE1_SUITE) == 7

    def test_table2_is_public_subset(self):
        names = {s.name for s in TABLE2_SUITE}
        assert names == {"apex7", "frg1", "x1", "x3"}

    def test_interface_matches_paper(self):
        expectations = {
            "industry1": (127, 122),
            "industry2": (97, 86),
            "industry3": (117, 199),
            "apex7": (79, 36),
            "frg1": (31, 3),
            "x1": (87, 28),
            "x3": (235, 99),
        }
        for spec in TABLE1_SUITE:
            net = spec.build()
            assert (len(net.inputs), len(net.outputs)) == expectations[spec.name]

    def test_spec_by_name(self):
        assert spec_by_name("frg1").n_outputs == 3
        with pytest.raises(ReproError):
            spec_by_name("nonexistent")

    def test_build_suite_subset(self):
        nets = build_suite(["frg1"])
        assert set(nets) == {"frg1"}

    def test_paper_rows_recorded(self):
        spec = spec_by_name("frg1")
        assert spec.table1.ma_size == 98
        assert spec.table1.power_savings_pct == pytest.approx(34.1)
        assert spec.table2.power_savings_pct == pytest.approx(40.3)

    def test_builds_are_deterministic(self):
        a = spec_by_name("apex7").build()
        b = spec_by_name("apex7").build()
        assert write_blif(a) == write_blif(b)
