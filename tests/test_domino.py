"""Unit tests for the domino cell library, mapper and timing engine."""

import pytest

from repro.errors import ReproError, TimingError
from repro.network.duplication import phase_transform, implementation_network
from repro.network.netlist import GateType, LogicNetwork
from repro.network.ops import networks_equivalent
from repro.phase import Phase, PhaseAssignment
from repro.domino.gates import DEFAULT_LIBRARY, DominoCellLibrary
from repro.domino.mapper import (
    decompose_to_cells,
    map_implementation,
    map_network,
    simulate_mapped_power,
)
from repro.domino.timing import (
    analyze_timing,
    default_timing_target,
    resize_to_meet_timing,
)


@pytest.fixture
def lib():
    return DominoCellLibrary(max_and_fanin=3, max_or_fanin=4)


class TestLibrary:
    def test_cell_names(self, lib):
        assert lib.cell(GateType.AND, 2).name == "DAND2"
        assert lib.cell(GateType.OR, 4).name == "DOR4"
        assert lib.inverter.name == "SINV"

    def test_fanin_limit_enforced(self, lib):
        with pytest.raises(ReproError):
            lib.cell(GateType.AND, 4)

    def test_no_cell_for_not(self, lib):
        with pytest.raises(ReproError):
            lib.cell(GateType.NOT, 1)

    def test_inverter_is_static(self, lib):
        assert lib.inverter.clock_cap == 0.0
        assert lib.cell(GateType.AND, 2).is_domino
        assert not lib.inverter.is_domino

    def test_and_delay_grows_with_stack(self, lib):
        d2 = lib.cell(GateType.AND, 2).delay(1.0)
        d3 = lib.cell(GateType.AND, 3).delay(1.0)
        assert d3 > d2

    def test_or_has_no_stack_penalty(self, lib):
        d2 = lib.cell(GateType.OR, 2).delay(1.0)
        d4 = lib.cell(GateType.OR, 4).delay(1.0)
        assert d2 == pytest.approx(d4)

    def test_upsizing_reduces_delay(self, lib):
        cell = lib.cell(GateType.AND, 2)
        assert cell.delay(2.0, size_factor=2.0) < cell.delay(2.0, size_factor=1.0)

    def test_bad_size_factor(self, lib):
        with pytest.raises(ReproError):
            lib.cell(GateType.AND, 2).delay(1.0, size_factor=0.0)

    def test_arity_plan_within_limit(self, lib):
        assert lib.tree_arity_plan(GateType.AND, 3) == [3]

    def test_arity_plan_avoids_singleton_groups(self, lib):
        plan = lib.tree_arity_plan(GateType.AND, 4)
        assert sum(plan) == 4
        assert all(g >= 2 for g in plan)

    def test_bad_limits_rejected(self):
        with pytest.raises(ReproError):
            DominoCellLibrary(max_and_fanin=1)


class TestDecomposition:
    def _wide_gate_net(self, gate_type, n):
        net = LogicNetwork("wide")
        pis = [f"i{k}" for k in range(n)]
        for pi in pis:
            net.add_input(pi)
        net.add_gate("g", gate_type, pis)
        net.add_output("g")
        return net

    @pytest.mark.parametrize("gate_type,n", [(GateType.AND, 9), (GateType.OR, 13)])
    def test_decomposition_respects_limits(self, lib, gate_type, n):
        net = self._wide_gate_net(gate_type, n)
        out = decompose_to_cells(net, lib)
        limit = lib.max_fanin(gate_type)
        for node in out.gates:
            if node.gate_type is gate_type:
                assert len(node.fanins) <= limit

    @pytest.mark.parametrize("gate_type,n", [(GateType.AND, 9), (GateType.OR, 13)])
    def test_decomposition_preserves_function(self, lib, gate_type, n):
        net = self._wide_gate_net(gate_type, n)
        out = decompose_to_cells(net, lib)
        assert networks_equivalent(net, out, exhaustive_limit=13)

    def test_narrow_gates_untouched(self, lib, fig3_aoi):
        a = PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE})
        block = implementation_network(phase_transform(fig3_aoi, a))
        out = decompose_to_cells(block, lib)
        assert len(out.gates) == len(block.gates)


class TestMapping:
    def test_cell_count_includes_inverters(self, fig3_aoi):
        a = PhaseAssignment({"f": Phase.POSITIVE, "g": Phase.POSITIVE})
        impl = phase_transform(fig3_aoi, a)
        design = map_implementation(impl)
        # 6 domino gates + 4 input inverters.
        assert design.n_cells == 10
        assert design.standard_cell_count() == 10

    def test_counts_by_cell(self, fig3_aoi):
        a = PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE})
        design = map_implementation(phase_transform(fig3_aoi, a))
        hist = design.counts_by_cell()
        assert hist.get("SINV") == 1
        assert sum(hist.values()) == design.n_cells

    def test_map_rejects_bad_gate(self):
        net = LogicNetwork("bad")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("x", GateType.XOR, ["a", "b"])
        net.add_output("x")
        with pytest.raises(ReproError):
            map_network(net)

    def test_mapped_size_grows_with_resize(self, fig3_aoi):
        a = PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE})
        design = map_implementation(phase_transform(fig3_aoi, a))
        base = design.standard_cell_count()
        design.size_factors[next(iter(design.cells))] = 3.0
        assert design.standard_cell_count() == base + 2

    def test_node_capacitance_scales(self, fig3_aoi):
        a = PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE})
        design = map_implementation(phase_transform(fig3_aoi, a))
        name = next(iter(design.cells))
        c1 = design.node_capacitance(name)
        design.size_factors[name] = 2.0
        assert design.node_capacitance(name) == pytest.approx(2 * c1)


class TestMappedPower:
    def test_power_breakdown_keys(self, fig3_aoi):
        a = PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE})
        design = map_implementation(phase_transform(fig3_aoi, a))
        sim = simulate_mapped_power(design, n_vectors=1024, seed=0)
        assert set(sim) == {"domino", "clock", "static", "total", "current_ma"}
        assert sim["total"] == pytest.approx(
            sim["domino"] + sim["clock"] + sim["static"]
        )

    def test_clock_energy_counts_every_domino_cell(self, fig3_aoi):
        a = PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE})
        design = map_implementation(phase_transform(fig3_aoi, a))
        sim = simulate_mapped_power(design, n_vectors=256, seed=0)
        n_domino = sum(1 for c in design.cells.values() if c.is_domino)
        assert sim["clock"] == pytest.approx(n_domino * design.library.clock_cap)

    def test_phase_choice_changes_mapped_power(self, fig3_aoi):
        probs = {pi: 0.9 for pi in fig3_aoi.inputs}
        lo = map_implementation(
            phase_transform(fig3_aoi, PhaseAssignment({"f": Phase.POSITIVE, "g": Phase.NEGATIVE}))
        )
        hi = map_implementation(
            phase_transform(fig3_aoi, PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE}))
        )
        p_lo = simulate_mapped_power(lo, input_probs=probs, n_vectors=8192, seed=1)
        p_hi = simulate_mapped_power(hi, input_probs=probs, n_vectors=8192, seed=1)
        assert p_lo["domino"] < p_hi["domino"]


class TestTiming:
    def test_arrival_monotone(self, small_random):
        a = PhaseAssignment.all_positive(small_random.output_names())
        design = map_implementation(phase_transform(small_random, a))
        report = analyze_timing(design)
        net = design.network
        for node in net.gates:
            for fi in node.fanins:
                assert report.arrival[node.name] >= report.arrival[fi]

    def test_critical_path_is_connected(self, small_random):
        a = PhaseAssignment.all_positive(small_random.output_names())
        design = map_implementation(phase_transform(small_random, a))
        report = analyze_timing(design)
        net = design.network
        for prev, nxt in zip(report.critical_path, report.critical_path[1:]):
            assert prev in net.nodes[nxt].fanins

    def test_resize_meets_relaxed_target(self, small_random):
        a = PhaseAssignment.all_positive(small_random.output_names())
        design = map_implementation(phase_transform(small_random, a))
        report = analyze_timing(design)
        target = report.critical_delay * 0.9
        result = resize_to_meet_timing(design, target)
        assert result.met_timing
        assert result.final_delay <= target
        assert result.upsized_cells > 0

    def test_resize_increases_area(self, small_random):
        a = PhaseAssignment.all_positive(small_random.output_names())
        design = map_implementation(phase_transform(small_random, a))
        base_area = design.cell_area()
        resize_to_meet_timing(design, default_timing_target(design, 0.9))
        assert design.cell_area() > base_area

    def test_impossible_target_reported(self, small_random):
        a = PhaseAssignment.all_positive(small_random.output_names())
        design = map_implementation(phase_transform(small_random, a))
        result = resize_to_meet_timing(design, 1e-6, max_iterations=10)
        assert not result.met_timing
        assert result.final_delay <= result.initial_delay

    def test_bad_parameters_rejected(self, small_random):
        a = PhaseAssignment.all_positive(small_random.output_names())
        design = map_implementation(phase_transform(small_random, a))
        with pytest.raises(TimingError):
            resize_to_meet_timing(design, -1.0)
        with pytest.raises(TimingError):
            resize_to_meet_timing(design, 1.0, step=0.9)

    def test_slack(self, small_random):
        a = PhaseAssignment.all_positive(small_random.output_names())
        design = map_implementation(phase_transform(small_random, a))
        report = analyze_timing(design)
        assert report.slack(report.critical_delay + 1.0) == pytest.approx(1.0)
