"""HTTP round-trip tests for the serve front-end: a real server on an
ephemeral port, driven with urllib from the test thread — submit, poll,
stream events, cancel, warm-store repeat, and the error status codes."""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.bench.generators import GeneratorConfig, random_control_network
from repro.core.config import FlowConfig
from repro.network.blif import write_blif
from repro.serve import Service, serve_forever
from repro.store import ArtifactStore

FAST = FlowConfig(n_vectors=256)
TERMINAL = ("done", "failed", "cancelled")


def tiny_network(name="tiny", seed=3):
    cfg = GeneratorConfig(n_inputs=10, n_outputs=4, n_gates=28, seed=seed)
    return random_control_network(name, cfg)


class ServerFixture:
    """A live serve stack in a background thread with its own loop."""

    def __init__(self, tmp_path):
        self.store = ArtifactStore(tmp_path / "store")
        self._started = threading.Event()
        self._loop = None
        self._stop = None
        self.base = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(timeout=30), "server did not come up"

    def _run(self):
        async def main():
            service = Service(FAST, jobs=2, queue_size=8, store=self.store)
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()

            def ready(frontend):
                self.base = f"http://127.0.0.1:{frontend.port}"
                self._started.set()

            await serve_forever(service, port=0, ready=ready, stop=self._stop)

        asyncio.run(main())

    def close(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)
        assert not self._thread.is_alive(), "server thread did not exit"

    # ------------------------------------------------------------------

    def request(self, method, path, body=None):
        """(status, decoded JSON) for one request; HTTP errors included."""
        data = json.dumps(body).encode("utf-8") if body is not None else None
        req = urllib.request.Request(self.base + path, data=data, method=method)
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def poll(self, job_id, timeout=240):
        import time

        deadline = time.time() + timeout
        while time.time() < deadline:
            status, snap = self.request("GET", f"/jobs/{job_id}")
            assert status == 200
            if snap["state"] in TERMINAL:
                return snap
            time.sleep(0.1)
        raise AssertionError(f"job {job_id} never finished")


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    fixture = ServerFixture(tmp_path_factory.mktemp("serve-http"))
    yield fixture
    fixture.close()


class TestEndpoints:
    def test_healthz(self, server):
        status, health = server.request("GET", "/healthz")
        assert status == 200
        assert health["state"] == "running"
        assert health["workers"] == 2 and health["queue_size"] == 8
        assert set(health["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled",
        }

    def test_submit_poll_roundtrip_inline_blif(self, server):
        blif = write_blif(tiny_network("httpjob", 11))
        status, snap = server.request("POST", "/jobs", {"blif": blif})
        assert status == 202
        assert snap["state"] == "queued" and snap["job_id"].startswith("job-")
        done = server.poll(snap["job_id"])
        assert done["state"] == "done" and not done["cached"]
        assert done["row"]["ckt"] == "httpjob"
        assert done["runtime_s"] > 0

    def test_repeat_submission_served_from_store(self, server):
        blif = write_blif(tiny_network("warmjob", 13))
        status, cold = server.request("POST", "/jobs", {"blif": blif})
        assert status == 202
        cold_done = server.poll(cold["job_id"])
        status, warm = server.request("POST", "/jobs", {"blif": blif})
        # instant hit: answered 200 already-done, no queue slot used
        assert status == 200
        assert warm["state"] == "done" and warm["cached"]
        assert warm["started_at"] is None
        assert warm["row"] == cold_done["row"]

    def test_events_stream_ndjson_until_terminal(self, server):
        blif = write_blif(tiny_network("streamjob", 17))
        _, snap = server.request("POST", "/jobs", {"blif": blif})
        events = []
        with urllib.request.urlopen(
            server.base + f"/jobs/{snap['job_id']}/events", timeout=240
        ) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            for line in resp:
                events.append(json.loads(line))
        assert [e["state"] for e in events] == ["queued", "running", "done"]
        assert [e["seq"] for e in events] == [0, 1, 2]

    def test_cancel_with_delete(self, server):
        blif = write_blif(tiny_network("can1", 19))
        _, snap = server.request("POST", "/jobs", {"blif": blif})
        status, body = server.request("DELETE", f"/jobs/{snap['job_id']}")
        assert status == 200
        assert body["job_id"] == snap["job_id"]
        assert isinstance(body["cancelled"], bool)
        final = server.poll(snap["job_id"])
        assert (final["state"] == "cancelled") == body["cancelled"]

    def test_jobs_listing(self, server):
        blif = write_blif(tiny_network("listed", 23))
        _, snap = server.request("POST", "/jobs", {"blif": blif})
        server.poll(snap["job_id"])
        status, body = server.request("GET", "/jobs")
        assert status == 200
        assert snap["job_id"] in {j["job_id"] for j in body["jobs"]}

    def test_config_knob_reaches_the_flow(self, server):
        blif = write_blif(tiny_network("cfgjob", 29))
        _, snap = server.request(
            "POST", "/jobs", {"blif": blif, "config": {"n_vectors": 128}}
        )
        assert server.poll(snap["job_id"])["state"] == "done"


class TestErrorCodes:
    def test_unknown_job_is_404(self, server):
        status, body = server.request("GET", "/jobs/job-9999")
        assert status == 404 and "unknown job" in body["error"]
        status, _ = server.request("GET", "/jobs/job-9999/events")
        assert status == 404

    def test_no_circuit_source_is_400(self, server):
        status, body = server.request("POST", "/jobs", {})
        assert status == 400 and "exactly one" in body["error"]

    def test_two_circuit_sources_is_400(self, server):
        status, _ = server.request(
            "POST", "/jobs", {"blif": ".model x", "spec": "frg1"}
        )
        assert status == 400

    def test_unknown_spec_is_400(self, server):
        status, body = server.request("POST", "/jobs", {"spec": "not-a-circuit"})
        assert status == 400 and "not-a-circuit" in body["error"]

    def test_malformed_blif_is_400(self, server):
        status, body = server.request("POST", "/jobs", {"blif": "garbage here"})
        assert status == 400 and "unexpected token" in body["error"]

    def test_bad_config_is_400(self, server):
        blif = write_blif(tiny_network())
        status, body = server.request(
            "POST", "/jobs", {"blif": blif, "config": {"n_vectors": -1}}
        )
        assert status == 400 and "n_vectors" in body["error"]

    def test_unknown_optimizer_strategy_is_400(self, server):
        blif = write_blif(tiny_network())
        status, body = server.request(
            "POST", "/jobs", {"blif": blif, "config": {"optimizer": "bogus"}}
        )
        assert status == 400
        assert "unknown optimizer strategy 'bogus'" in body["error"]

    def test_unknown_optimizer_param_is_400(self, server):
        blif = write_blif(tiny_network())
        status, body = server.request(
            "POST",
            "/jobs",
            {"blif": blif, "config": {"optimizer_params": {"stale_knob": 1}}},
        )
        assert status == 400 and "stale_knob" in body["error"]

    def test_invalid_json_body_is_400(self, server):
        req = urllib.request.Request(
            server.base + "/jobs", data=b"not json{", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 400

    def test_unroutable_path_is_404(self, server):
        status, _ = server.request("GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, server):
        status, _ = server.request("PUT", "/jobs")
        assert status == 405


class TestHeaderHardening:
    def _raw_request(self, server, payload: bytes):
        """Send raw bytes on a fresh socket; returns the status line."""
        import socket

        host, port = server.base.removeprefix("http://").split(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            data = sock.recv(4096)
        return data.split(b"\r\n", 1)[0].decode("latin-1", "replace")

    def test_garbage_content_length_is_400(self, server):
        status_line = self._raw_request(
            server,
            b"POST /jobs HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
        )
        assert " 400 " in status_line

    def test_negative_content_length_is_400(self, server):
        status_line = self._raw_request(
            server,
            b"POST /jobs HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
        )
        assert " 400 " in status_line

    def test_non_numeric_timeout_is_400(self, server):
        status, body = server.request(
            "POST", "/jobs", {"spec": "frg1", "timeout_s": "abc"}
        )
        assert status == 400 and "timeout_s" in body["error"]

    def test_zero_timeout_is_400(self, server):
        status, body = server.request(
            "POST", "/jobs", {"spec": "frg1", "timeout_s": 0}
        )
        assert status == 400 and "timeout_s" in body["error"]


class TestEventsDisconnect:
    """Regression: a client dropping the NDJSON events stream used to
    raise BrokenPipeError/ConnectionResetError out of the stream
    handler (into the generic 500 path, which then wrote a second
    response into the dead socket).  Disconnects must end the stream
    quietly and leave the server fully healthy."""

    class _DyingWriter:
        """StreamWriter stand-in whose pipe breaks after the headers."""

        def __init__(self, fail_after: int = 1):
            self.drains = 0
            self.fail_after = fail_after

        def write(self, data: bytes) -> None:
            pass

        async def drain(self) -> None:
            self.drains += 1
            if self.drains > self.fail_after:
                raise BrokenPipeError("client went away")

    def test_midstream_disconnect_is_swallowed(self):
        async def body():
            service = Service(FAST, jobs=1, queue_size=4)
            async with service:
                from repro.serve import HttpFrontend

                frontend = HttpFrontend(service)
                job_id = await service.submit(tiny_network("dying", 31))
                await service.result(job_id, timeout=240)
                writer = self._DyingWriter(fail_after=1)
                # must return cleanly — not raise into the 500 handler
                await frontend._stream_events(job_id, writer)
                assert writer.drains >= 2  # headers + at least one event

        asyncio.run(body())

    def test_live_disconnect_keeps_the_server_healthy(self, server):
        import socket

        blif = write_blif(tiny_network("dropped", 37))
        _, snap = server.request("POST", "/jobs", {"blif": blif})
        host, port = server.base.removeprefix("http://").split(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(
                f"GET /jobs/{snap['job_id']}/events HTTP/1.1\r\n"
                "Host: x\r\n\r\n".encode("latin-1")
            )
            assert sock.recv(64)  # stream started (headers arrived)
            # drop the connection mid-stream, with events still coming
        final = server.poll(snap["job_id"])
        assert final["state"] == "done"
        # the handler absorbed the disconnect: the server still serves
        status, health = server.request("GET", "/healthz")
        assert status == 200 and health["state"] == "running"
        # and a fresh events stream still works end to end
        status, again = server.request("POST", "/jobs", {"blif": blif})
        assert status in (200, 202)
