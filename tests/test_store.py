"""Tests for the persistent store layer: network fingerprints, the
ArtifactStore (cold/warm equivalence, corruption tolerance, gc), the
store-backed Pipeline/run_many/run_table paths, and the RunStore
registry."""

import json
import os

import pytest

from repro.bench.generators import GeneratorConfig, random_control_network
from repro.core.batch import run_many
from repro.core.config import FlowConfig
from repro.core.pipeline import Pipeline
from repro.network.blif import parse_blif, write_blif
from repro.network.netlist import GateType
from repro.report import flow_result_from_dict, flow_result_to_dict
from repro.store import (
    ArtifactStore,
    RunStore,
    RunStoreError,
    default_store_dir,
    network_from_dict,
    network_to_dict,
)

FAST = FlowConfig(n_vectors=256)


def tiny_network(name="tiny", seed=3):
    cfg = GeneratorConfig(n_inputs=10, n_outputs=4, n_gates=28, seed=seed)
    return random_control_network(name, cfg)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


# ----------------------------------------------------------------------
# fingerprint


class TestFingerprint:
    def test_same_blif_parsed_twice_same_key(self):
        text = write_blif(tiny_network())
        assert parse_blif(text).fingerprint() == parse_blif(text).fingerprint()

    def test_copy_and_reserialized_copies_agree(self):
        net = tiny_network()
        assert net.copy().fingerprint() == net.fingerprint()
        assert network_from_dict(network_to_dict(net)).fingerprint() == net.fingerprint()

    def test_one_gate_edit_changes_key(self):
        net = tiny_network()
        edited = net.copy()
        gate = next(n for n in edited.gates if n.gate_type in (GateType.AND, GateType.OR))
        gate.gate_type = (
            GateType.OR if gate.gate_type is GateType.AND else GateType.AND
        )
        assert edited.fingerprint() != net.fingerprint()

    def test_fanin_swap_changes_key(self):
        net = tiny_network()
        edited = net.copy()
        gate = next(n for n in edited.gates if len(n.fanins) >= 2)
        gate.fanins = list(reversed(gate.fanins))
        assert edited.fingerprint() != net.fingerprint()

    def test_name_participates(self):
        net = tiny_network()
        assert net.copy(name="other").fingerprint() != net.fingerprint()

    def test_insertion_order_does_not_participate(self):
        net = tiny_network()
        reordered = net.copy()
        reordered.nodes = dict(sorted(reordered.nodes.items(), reverse=True))
        assert reordered.fingerprint() == net.fingerprint()

    def test_default_store_dir_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", "/tmp/elsewhere")
        assert default_store_dir() == "/tmp/elsewhere"
        monkeypatch.delenv("REPRO_STORE_DIR")
        assert default_store_dir() == ".repro-store"


# ----------------------------------------------------------------------
# cold vs warm equivalence


class TestColdWarm:
    def test_warm_flow_bit_identical_to_cold(self, store):
        net = tiny_network()
        cold = Pipeline(FAST, store=store).run(net)
        # a *fresh* structurally-equal network: identity-keyed in-process
        # caching cannot help, only the persistent store can
        warm = Pipeline(FAST, store=store).run(tiny_network())
        assert all(s.cached or s.skipped for s in warm.stages)
        assert flow_result_to_dict(warm.flow) == flow_result_to_dict(cold.flow)

    def test_warm_run_executes_zero_optimizer_stages(self, store):
        """The skip/override-hook check: a warm pipeline whose optimizer
        stages are overridden with counters never invokes them."""
        net = tiny_network()
        Pipeline(FAST, store=store).run(net)
        executions = {"optimize_ma": 0, "optimize_mp": 0, "measure": 0}

        def counting(name):
            def hook(ctx):
                executions[name] += 1
                raise AssertionError(f"stage {name} executed on a warm run")

            return hook

        warm = Pipeline(
            FAST,
            store=store,
            overrides={name: counting(name) for name in executions},
        ).run(tiny_network())
        assert executions == {"optimize_ma": 0, "optimize_mp": 0, "measure": 0}
        assert warm.flow is not None

    def test_partial_warm_shares_prepare_and_probs(self, store):
        net = tiny_network()
        Pipeline(FAST, store=store).run(net)
        other = Pipeline(FAST.replace(n_vectors=512), store=store).run(tiny_network())
        assert other.stage("prepare").cached
        assert other.stage("sequential").cached
        assert not other.stage("optimize_ma").cached
        assert not other.stage("measure").cached

    def test_config_change_is_a_miss(self, store):
        net = tiny_network()
        Pipeline(FAST, store=store).run(net)
        warm = Pipeline(FAST.replace(seed=5), store=store).run(tiny_network())
        assert not warm.stage("measure").cached

    def test_sequential_circuit_round_trips(self, store):
        from repro.network.netlist import LogicNetwork

        def seq_net():
            net = LogicNetwork("seqtest")
            for pi in ("a", "b"):
                net.add_input(pi)
            net.add_gate("g1", GateType.AND, ["a", "q"])
            net.add_gate("g2", GateType.OR, ["g1", "b"])
            net.add_latch("q", "g2", init_value=0)
            net.add_output("g2")
            net.validate()
            return net

        round_tripped = network_from_dict(network_to_dict(seq_net()))
        assert round_tripped.fingerprint() == seq_net().fingerprint()
        assert [latch.name for latch in round_tripped.latches] == ["q"]
        assert round_tripped.latches[0].init_value == 0
        cold = Pipeline(FAST, store=store).run(seq_net())
        warm = Pipeline(FAST, store=store).run(seq_net())
        assert all(s.cached or s.skipped for s in warm.stages)
        assert warm.flow.row() == cold.flow.row()

    def test_network_edit_is_a_miss(self, store):
        Pipeline(FAST, store=store).run(tiny_network())
        warm = Pipeline(FAST, store=store).run(tiny_network(seed=4))
        assert not any(s.cached for s in warm.stages)

    def test_skip_set_participates_in_flow_key(self, store):
        net = tiny_network()
        Pipeline(FAST, store=store).run(net)
        warm = Pipeline(FAST, store=store, skip=("optimize_mp",)).run(tiny_network())
        assert not warm.stage("measure").cached
        # but re-running the same skip set is warm
        warm2 = Pipeline(FAST, store=store, skip=("optimize_mp",)).run(tiny_network())
        assert warm2.stage("measure").cached

    def test_overrides_do_not_write_to_store(self, store):
        from repro.phase import PhaseAssignment

        def fake_mp(ctx):
            from repro.core.optimizer import OptimizationResult

            assignment = PhaseAssignment.all_positive(ctx.aoi.output_names())
            return OptimizationResult(
                assignment=assignment,
                power=ctx.evaluator.power(assignment),
                initial_power=0.0,
                method="fake",
                evaluations=0,
            )

        Pipeline(FAST, store=store, overrides={"optimize_mp": fake_mp}).run(
            tiny_network()
        )
        assert store.stats().total_entries == 0


# ----------------------------------------------------------------------
# corruption tolerance


class TestCorruption:
    def _populate(self, store):
        Pipeline(FAST, store=store).run(tiny_network())
        entries = [
            p
            for p in store.root.glob("*/*/*.json")
            if p.parent.parent.name in ("flow", "prepare")
        ]
        assert entries
        return entries

    def test_truncated_entry_is_discarded_not_crashed(self, store):
        for path in self._populate(store):
            path.write_text(path.read_text()[: len(path.read_text()) // 2])
        warm = Pipeline(FAST, store=store).run(tiny_network())
        assert warm.flow is not None
        assert not warm.stage("prepare").cached

    def test_garbage_json_is_discarded(self, store):
        for path in self._populate(store):
            path.write_text("{not json at all")
        assert store.get("flow", "00" * 32, ("x",)) is None
        warm = Pipeline(FAST, store=store).run(tiny_network())
        assert warm.flow is not None

    def test_structurally_invalid_network_payload_is_a_miss(self, store):
        """A parseable prepare entry whose network fails validation
        (hand-edited fanin, duplicate node) reads as a miss, not a crash."""
        Pipeline(FAST, store=store).run(tiny_network())
        (entry,) = store.root.glob("prepare/*/*.json")
        data = json.loads(entry.read_text())
        data["payload"]["nodes"][-1]["fanins"] = ["does_not_exist"]
        entry.write_text(json.dumps(data))
        for flow_entry in store.root.glob("flow/*/*.json"):
            flow_entry.unlink()  # defeat the whole-run short circuit
        warm = Pipeline(FAST, store=store).run(tiny_network())
        assert warm.flow is not None
        assert not warm.stage("prepare").cached

    def test_valid_json_wrong_shape_is_discarded(self, store):
        for path in self._populate(store):
            path.write_text(json.dumps({"version": 999, "payload": []}))
        warm = Pipeline(FAST, store=store).run(tiny_network())
        assert warm.flow is not None
        # the bad entries were overwritten by the recompute
        warm2 = Pipeline(FAST, store=store).run(tiny_network())
        assert warm2.stage("measure").cached

    def test_gc_removes_corrupt_and_stale(self, store):
        entries = self._populate(store)
        total = store.stats().total_entries
        entries[0].write_text("garbage")
        assert store.gc() == 1
        assert store.stats().total_entries == total - 1

    def test_gc_max_age(self, store):
        self._populate(store)
        total = store.stats().total_entries
        assert store.gc(max_age_days=10000) == 0
        assert store.gc(max_age_days=0.0) == total
        assert store.stats().total_entries == 0

    def test_clear(self, store):
        self._populate(store)
        assert store.clear() > 0
        assert store.stats().total_entries == 0


# ----------------------------------------------------------------------
# batch + table integration


class TestBatchStore:
    def test_run_many_skips_cached_pairs(self, store):
        nets = [tiny_network("a", 3), tiny_network("b", 5)]
        cold = run_many(nets, FAST, store=store)
        assert cold.n_cached == 0
        warm = run_many([tiny_network("a", 3), tiny_network("b", 5)], FAST, store=store)
        assert warm.n_cached == 2
        assert [i.result.row() for i in warm.items] == [
            i.result.row() for i in cold.items
        ]

    def test_run_many_parallel_store(self, store):
        nets = [tiny_network("a", 3), tiny_network("b", 5)]
        cold = run_many(nets, FAST, store=store, jobs=2)
        warm = run_many(nets, FAST, store=store, jobs=2)
        assert warm.n_cached == 2
        assert [i.result.row() for i in warm.items] == [
            i.result.row() for i in cold.items
        ]

    def test_second_table1_is_store_served_and_bit_identical(self, store):
        from repro.experiments.tables import run_table

        cold = run_table(circuits=["frg1"], n_vectors=256, store=store)
        assert cold.n_cached == 0
        warm = run_table(circuits=["frg1"], n_vectors=256, store=store)
        assert warm.n_cached == len(warm.rows) == 1
        assert [r.flow.row() for r in warm.rows] == [r.flow.row() for r in cold.rows]


# ----------------------------------------------------------------------
# run registry


class TestRunStore:
    def test_flow_record_round_trip(self, tmp_path):
        runs = RunStore(tmp_path / "runs")
        flow = Pipeline(FAST).run(tiny_network()).flow
        record = runs.record_flow(flow, FAST)
        loaded = runs.load(record.run_id)
        assert loaded.kind == "flow"
        assert loaded.circuits == ["tiny"]
        assert loaded.config == FAST.to_dict()
        (restored,) = loaded.flow_results()
        assert restored.row() == flow.row()
        assert dict(restored.mp.assignment) == dict(flow.mp.assignment)

    def test_batch_record_keeps_failures(self, tmp_path):
        bad = tmp_path / "bad.blif"
        bad.write_text(".model broken\n.inputs a\n.outputs z\n")
        runs = RunStore(tmp_path / "runs")
        batch = run_many([tiny_network(), str(bad)], FAST)
        record = runs.record_batch(batch)
        loaded = runs.load(record.run_id)
        assert loaded.n_ok == 1 and loaded.n_failed == 1
        assert len(loaded.flow_results()) == 1

    def test_query_filters(self, tmp_path):
        runs = RunStore(tmp_path / "runs")
        flow = Pipeline(FAST).run(tiny_network()).flow
        runs.record_flow(flow, FAST)
        runs.record_flow(flow, FAST.replace(seed=9))
        assert len(runs.query()) == 2
        assert len(runs.query(circuit="tiny")) == 2
        assert runs.query(circuit="nope") == []
        assert runs.query(kind="sweep") == []
        assert len(runs.query(since="2000-01-01")) == 2
        assert runs.query(until="2000-01-01") == []
        assert len(runs.query(config_match={"seed": 9})) == 1

    def test_missing_run_raises(self, tmp_path):
        with pytest.raises(RunStoreError):
            RunStore(tmp_path / "runs").load("nope")

    def test_default_root_under_store_dir(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", "/tmp/somewhere")
        assert str(RunStore().root) == os.path.join("/tmp/somewhere", "runs")


# ----------------------------------------------------------------------
# thread safety (the serve path: many threads, one store object)


class TestStoreConcurrency:
    FP = "ab" * 32  # a plausible sha256-hex fingerprint

    def test_concurrent_put_get_same_entry(self, store):
        """Two threads writing the same entry must not race on a shared
        temp path, and readers must only ever observe complete entries."""
        import threading

        n_threads, n_rounds = 8, 25
        payloads = [{"value": i} for i in range(n_threads)]
        errors = []

        def hammer(i):
            try:
                for _ in range(n_rounds):
                    store.put("probs", self.FP, ("k",), payloads[i])
                    got = store.get("probs", self.FP, ("k",))
                    assert got in payloads, f"corrupt read: {got!r}"
            except Exception as exc:  # noqa: BLE001 — collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # last writer won cleanly and no temp files leaked
        assert store.get("probs", self.FP, ("k",)) in payloads
        assert list(store.root.glob("*/*/*.tmp.*")) == []

    def test_hit_miss_counters_exact_under_contention(self, store):
        """The locked counters must not drop increments: hits + misses
        equals the exact number of get() calls issued."""
        import threading

        store.put("flow", self.FP, ("warm",), {"ok": 1})
        n_threads, n_rounds = 8, 40

        def reader():
            for _ in range(n_rounds):
                store.get("flow", self.FP, ("warm",))   # hit
                store.get("flow", self.FP, ("cold",))   # miss

        threads = [threading.Thread(target=reader) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.hits["flow"] == n_threads * n_rounds
        assert store.misses["flow"] == n_threads * n_rounds
        stats = store.stats()
        assert stats.hits["flow"] == n_threads * n_rounds
        assert stats.misses["flow"] == n_threads * n_rounds

    def test_temp_suffixes_unique_across_threads(self, store, monkeypatch):
        """The temp-file name embeds thread id + a monotonic counter, so
        concurrent writers of one entry never collide."""
        import threading

        seen = []
        real_replace = os.replace

        def spying_replace(src, dst):
            seen.append(str(src))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spying_replace)

        def writer():
            for _ in range(10):
                store.put("probs", self.FP, ("k",), {"v": 0})

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 40 and len(set(seen)) == 40
