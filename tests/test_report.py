"""Tests for result serialisation, plus correlated input streams."""

import json

import numpy as np
import pytest

from repro.bench.generators import GeneratorConfig, random_control_network
from repro.core.flow import run_flow
from repro.errors import PowerError
from repro.power.probability import random_source_batch
from repro.report import (
    flow_result_from_dict,
    flow_result_to_dict,
    load_results,
    load_results_json,
    results_to_csv,
    results_to_json,
    results_to_markdown,
    save_results,
)


@pytest.fixture(scope="module")
def flow_result():
    cfg = GeneratorConfig(n_inputs=10, n_outputs=3, n_gates=24, seed=33)
    net = random_control_network("rpt", cfg)
    return run_flow(net, n_vectors=512, seed=0)


@pytest.fixture(scope="module")
def timed_flow_result():
    cfg = GeneratorConfig(n_inputs=10, n_outputs=3, n_gates=24, seed=33)
    net = random_control_network("rpt_timed", cfg)
    return run_flow(net, timed=True, n_vectors=512, seed=0)


class TestSerialisation:
    def test_dict_fields(self, flow_result):
        record = flow_result_to_dict(flow_result)
        assert record["ckt"] == "rpt"
        assert set(record["ma_assignment"]) == set(record["mp_assignment"])
        assert record["probability_method"] in ("bdd", "monte-carlo")

    def test_resize_recorded_for_timed(self, timed_flow_result):
        record = flow_result_to_dict(timed_flow_result)
        assert "ma_resize" in record
        assert "final_delay" in record["ma_resize"]

    def test_json_roundtrip(self, flow_result):
        text = results_to_json([flow_result])
        data = json.loads(text)
        assert len(data) == 1
        assert data[0]["ma_size"] == flow_result.ma.size

    def test_csv_has_header_and_row(self, flow_result):
        text = results_to_csv([flow_result])
        lines = text.strip().splitlines()
        assert lines[0].startswith("ckt,")
        assert lines[1].startswith("rpt,")

    def test_markdown_table(self, flow_result):
        text = results_to_markdown([flow_result])
        assert text.startswith("| Ckt |")
        assert "| rpt |" in text

    def test_markdown_with_paper_columns(self, flow_result):
        paper = {"rpt": {"area_penalty_pct": 1.0, "power_savings_pct": 2.0}}
        text = results_to_markdown([flow_result], paper_rows=paper)
        assert "paper %Pwr" in text
        assert "2.0" in text

    def test_save_and_load(self, flow_result, tmp_path):
        path = str(tmp_path / "out.json")
        save_results([flow_result], path)
        data = load_results_json(path)
        assert data[0]["ckt"] == "rpt"

    def test_save_csv_and_md(self, flow_result, tmp_path):
        save_results([flow_result], str(tmp_path / "out.csv"))
        save_results([flow_result], str(tmp_path / "out.md"))
        assert (tmp_path / "out.csv").read_text().startswith("ckt,")

    def test_unknown_extension_rejected(self, flow_result, tmp_path):
        with pytest.raises(ValueError):
            save_results([flow_result], str(tmp_path / "out.xml"))


class TestRoundTrip:
    """flow_result_from_dict closes the save/load asymmetry: records
    load back as FlowResult objects, bit-identical where serialised."""

    def test_dict_round_trip_bit_identical(self, flow_result):
        restored = flow_result_from_dict(flow_result_to_dict(flow_result))
        assert restored.row() == flow_result.row()
        assert restored.name == flow_result.name
        assert restored.timed == flow_result.timed
        assert restored.probability_method == flow_result.probability_method
        assert dict(restored.ma.assignment) == dict(flow_result.ma.assignment)
        assert dict(restored.mp.assignment) == dict(flow_result.mp.assignment)
        assert restored.ma.estimated_power == flow_result.ma.estimated_power
        assert restored.mp.critical_delay == flow_result.mp.critical_delay
        # the heavyweight in-memory artefacts are not archived
        assert restored.ma.implementation is None and restored.ma.design is None

    def test_timed_round_trip_keeps_resize(self, timed_flow_result):
        restored = flow_result_from_dict(flow_result_to_dict(timed_flow_result))
        original = timed_flow_result.ma.resize
        assert restored.ma.resize is not None
        assert restored.ma.resize.met_timing == original.met_timing
        assert restored.ma.resize.final_delay == original.final_delay
        assert restored.ma.resize.iterations == original.iterations
        assert restored.ma.resize.upsized_cells == original.upsized_cells

    def test_round_trip_through_json_file(self, flow_result, tmp_path):
        path = str(tmp_path / "out.json")
        save_results([flow_result], path)
        (restored,) = load_results(path)
        assert flow_result_to_dict(restored) == flow_result_to_dict(flow_result)

    def test_malformed_record_rejected(self):
        with pytest.raises(ValueError):
            flow_result_from_dict({"ckt": "x"})


class TestCorrelatedStreams:
    def test_stationary_probability_preserved(self, simple_and_or):
        batch = random_source_batch(
            simple_and_or, {"a": 0.7}, 40000, seed=0, correlation=0.8
        )
        assert batch["a"].mean() == pytest.approx(0.7, abs=0.02)

    def test_transition_rate_reduced(self, simple_and_or):
        plain = random_source_batch(simple_and_or, {"a": 0.5}, 40000, seed=1)
        corr = random_source_batch(
            simple_and_or, {"a": 0.5}, 40000, seed=1, correlation=0.8
        )
        t_plain = np.mean(plain["a"][1:] != plain["a"][:-1])
        t_corr = np.mean(corr["a"][1:] != corr["a"][:-1])
        assert t_corr < t_plain * 0.5

    def test_zero_correlation_identical_to_plain(self, simple_and_or):
        a = random_source_batch(simple_and_or, {"a": 0.5}, 64, seed=2)
        b = random_source_batch(simple_and_or, {"a": 0.5}, 64, seed=2, correlation=0.0)
        assert (a["a"] == b["a"]).all()

    def test_invalid_correlation_rejected(self, simple_and_or):
        with pytest.raises(PowerError):
            random_source_batch(simple_and_or, {}, 8, correlation=1.0)
        with pytest.raises(PowerError):
            random_source_batch(simple_and_or, {}, 8, correlation=-0.1)

    def test_domino_insensitive_static_sensitive(self, fig3_aoi):
        """Key domino property: correlation changes static-inverter power
        but not domino switching (domino pays per evaluation)."""
        from repro.network.duplication import phase_transform
        from repro.phase import Phase, PhaseAssignment
        from repro.power.simulator import evaluate_implementation_batch

        a = PhaseAssignment({"f": Phase.POSITIVE, "g": Phase.NEGATIVE})
        impl = phase_transform(fig3_aoi, a)
        probs = {pi: 0.5 for pi in fig3_aoi.inputs}
        results = {}
        for corr in (0.0, 0.85):
            batch = random_source_batch(fig3_aoi, probs, 30000, seed=3, correlation=corr)
            values = evaluate_implementation_batch(impl, batch)
            fire = float(np.mean([arr.mean() for arr in values.values()]))
            toggles = float(
                np.mean(
                    [
                        np.mean(batch[s][1:] != batch[s][:-1])
                        for s in impl.input_inverters
                    ]
                )
            )
            results[corr] = (fire, toggles)
        fire0, tog0 = results[0.0]
        fire1, tog1 = results[0.85]
        assert fire1 == pytest.approx(fire0, abs=0.02)  # domino: unchanged
        assert tog1 < tog0 * 0.5  # static: collapses
