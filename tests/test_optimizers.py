"""Unit tests for the min-area baseline and the min-power optimiser."""

import pytest

from repro.core.min_area import minimize_area
from repro.core.optimizer import minimize_power, random_search
from repro.phase import Phase, PhaseAssignment, enumerate_assignments
from repro.power.estimator import DominoPowerModel, PhaseEvaluator


@pytest.fixture
def fig3_evaluator(fig3_aoi):
    return PhaseEvaluator(
        fig3_aoi, input_probs={pi: 0.9 for pi in fig3_aoi.inputs}, method="bdd"
    )


@pytest.fixture
def random_evaluator(medium_random):
    return PhaseEvaluator(medium_random, method="bdd")


class TestMinimizeArea:
    def test_exhaustive_finds_global_optimum(self, fig3_evaluator):
        result = minimize_area(fig3_evaluator)
        assert result.method == "exhaustive"
        best = min(
            fig3_evaluator.area(a)
            for a in enumerate_assignments(fig3_evaluator.outputs)
        )
        assert result.area == best

    def test_fig3_min_area_is_aligned(self, fig3_evaluator):
        result = minimize_area(fig3_evaluator)
        # The aligned assignment (f-, g+): 3 gates + 1 output inverter.
        assert result.area == 4
        assert result.assignment["f"] is Phase.NEGATIVE
        assert result.assignment["g"] is Phase.POSITIVE

    def test_hill_climb_used_beyond_limit(self, random_evaluator):
        result = minimize_area(random_evaluator, exhaustive_limit=2)
        assert result.method == "hill-climb"
        # Hill climbing never ends above the all-positive start.
        start_area = random_evaluator.area(
            PhaseAssignment.all_positive(random_evaluator.outputs)
        )
        assert result.area <= start_area

    def test_hill_climb_close_to_exhaustive(self, random_evaluator):
        hc = minimize_area(random_evaluator, exhaustive_limit=2)
        ex = minimize_area(random_evaluator, exhaustive_limit=10)
        assert ex.method == "exhaustive"
        assert hc.area <= ex.area * 1.15

    def test_evaluation_count_tracked(self, fig3_evaluator):
        result = minimize_area(fig3_evaluator)
        assert result.evaluations == 4  # 2^2 assignments


class TestMinimizePower:
    def test_exhaustive_finds_global_optimum(self, fig3_evaluator):
        result = minimize_power(fig3_evaluator, method="exhaustive")
        best = min(
            fig3_evaluator.power(a)
            for a in enumerate_assignments(fig3_evaluator.outputs)
        )
        assert result.power == pytest.approx(best)

    def test_fig3_optimum_is_negative_cone(self, fig3_evaluator):
        result = minimize_power(fig3_evaluator, method="exhaustive")
        assert result.assignment["f"] is Phase.POSITIVE
        assert result.assignment["g"] is Phase.NEGATIVE

    def test_auto_dispatch(self, fig3_evaluator, random_evaluator):
        small = minimize_power(fig3_evaluator, method="auto")
        assert small.method == "exhaustive"
        large = minimize_power(random_evaluator, method="auto", exhaustive_limit=3)
        assert large.method == "pairwise"

    def test_pairwise_never_worse_than_start(self, random_evaluator):
        start = PhaseAssignment.all_positive(random_evaluator.outputs)
        result = minimize_power(random_evaluator, initial=start, method="pairwise")
        assert result.power <= result.initial_power

    def test_pairwise_commits_only_improvements(self, random_evaluator):
        result = minimize_power(random_evaluator, method="pairwise")
        power = result.initial_power
        current_best = power
        for record in result.history:
            if record.committed:
                assert record.candidate_power < current_best
                current_best = record.candidate_power
        assert result.power == pytest.approx(current_best)

    def test_pairwise_candidate_set_exhausted(self, random_evaluator):
        n = len(random_evaluator.outputs)
        result = minimize_power(random_evaluator, method="pairwise")
        assert len(result.history) == n * (n - 1) // 2

    def test_max_pairs_truncation(self, random_evaluator):
        result = minimize_power(random_evaluator, method="pairwise", max_pairs=5)
        assert len(result.history) == 5

    def test_pairwise_close_to_exhaustive_on_fig3(self, fig3_evaluator):
        pw = minimize_power(fig3_evaluator, method="pairwise")
        ex = minimize_power(fig3_evaluator, method="exhaustive")
        assert pw.power == pytest.approx(ex.power)

    def test_unknown_method_raises(self, fig3_evaluator):
        from repro.errors import PhaseError

        with pytest.raises(PhaseError):
            minimize_power(fig3_evaluator, method="bogus")

    def test_savings_percent(self, fig3_evaluator):
        result = minimize_power(fig3_evaluator, method="exhaustive")
        assert result.savings_percent >= 0.0

    def test_single_output_circuit(self):
        from repro.network.netlist import GateType, LogicNetwork

        net = LogicNetwork("one")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g", GateType.OR, ["a", "b"])
        net.add_output("g")
        ev = PhaseEvaluator(net, input_probs={"a": 0.9, "b": 0.9}, method="bdd")
        result = minimize_power(ev, method="pairwise")
        # OR at p=0.99: negative phase (AND of complements, p=.01) wins.
        assert result.assignment["g"] is Phase.NEGATIVE


class TestRandomSearch:
    def test_never_worse_than_start(self, random_evaluator):
        result = random_search(random_evaluator, n_samples=16, seed=0)
        assert result.power <= result.initial_power

    def test_pairwise_beats_or_ties_random(self, random_evaluator):
        rnd = random_search(random_evaluator, n_samples=16, seed=0)
        pw = minimize_power(random_evaluator, method="pairwise")
        # The paper's heuristic should not lose badly to random sampling.
        assert pw.power <= rnd.power * 1.05
