"""Unit tests for the sequential substrate: s-graphs, MFVS, partitioning."""

import pytest

from repro.errors import SequentialError
from repro.network.netlist import GateType, LogicNetwork
from repro.seq.sgraph import SGraph, extract_sgraph, sgraph_from_edges
from repro.seq.transforms import (
    apply_symmetry_grouping,
    apply_t0_sources_sinks,
    apply_t1_self_loops,
    apply_t2_bypass,
    figure9_graph,
    reduce_graph,
)
from repro.seq.mfvs import exact_mfvs, greedy_mfvs, mfvs, verify_feedback_set
from repro.seq.partition import partition_sequential, sequential_probabilities
from repro.bench.generators import random_sequential_network


class TestSGraph:
    def test_add_and_remove(self):
        g = sgraph_from_edges([("a", "b"), ("b", "a")])
        assert g.n_vertices == 2
        assert g.n_edges == 2
        g.remove_vertex("a")
        assert g.n_vertices == 1
        assert g.n_edges == 0

    def test_duplicate_vertex_rejected(self):
        g = SGraph()
        g.add_vertex("a")
        with pytest.raises(SequentialError):
            g.add_vertex("a")

    def test_edge_to_unknown_vertex_rejected(self):
        g = SGraph()
        g.add_vertex("a")
        with pytest.raises(SequentialError):
            g.add_edge("a", "ghost")

    def test_self_loop_detection(self):
        g = sgraph_from_edges([("a", "a")])
        assert g.has_self_loop("a")

    def test_acyclicity(self):
        assert sgraph_from_edges([("a", "b"), ("b", "c")]).is_acyclic()
        assert not sgraph_from_edges([("a", "b"), ("b", "a")]).is_acyclic()

    def test_subgraph_without(self):
        g = sgraph_from_edges([("a", "b"), ("b", "a"), ("b", "c")])
        sub = g.subgraph_without(["a"])
        assert sub.n_vertices == 2
        assert sub.is_acyclic()

    def test_scc(self):
        g = sgraph_from_edges([("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "c")])
        comps = {frozenset(c) for c in g.strongly_connected_components()}
        assert frozenset({"a", "b"}) in comps
        assert frozenset({"c", "d"}) in comps

    def test_copy_independent(self):
        g = sgraph_from_edges([("a", "b")])
        h = g.copy()
        h.remove_vertex("a")
        assert g.n_vertices == 2


class TestExtraction:
    def test_fig7_sgraph(self, fig7):
        g = extract_sgraph(fig7)
        assert set(g.vertices) == {"l0", "l1"}
        # l1 feeds g0 -> g1 -> d0 -> l0; l0 feeds g2 -> d1 -> l1.
        assert "l0" in g.succ["l1"]
        assert "l1" in g.succ["l0"]

    def test_combinational_network_has_empty_sgraph(self, simple_and_or):
        assert extract_sgraph(simple_and_or).n_vertices == 0

    def test_latch_to_latch_direct(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_latch("l0", "l1")
        net.add_latch("l1", "a")
        g = extract_sgraph(net)
        assert "l0" in g.succ["l1"]
        assert g.is_acyclic()


class TestTransformations:
    def test_t0_removes_sources_and_sinks(self):
        g = sgraph_from_edges([("a", "b"), ("b", "c"), ("b", "b")])
        removed = apply_t0_sources_sinks(g)
        # a (source) and c (sink) go; b has a self-loop and stays.
        assert removed == 2
        assert g.vertices == ["b"]

    def test_t1_forces_self_loops(self):
        g = sgraph_from_edges([("a", "a"), ("a", "b"), ("b", "a")])
        forced = []
        n = apply_t1_self_loops(g, forced)
        assert n == 1
        assert forced == ["a"]

    def test_t2_bypass_creates_self_loop(self):
        # u -> x -> u with x having single pred and succ.
        g = sgraph_from_edges([("u", "x"), ("x", "u")])
        n = apply_t2_bypass(g)
        assert n >= 1
        # Whichever vertex remains now has a self-loop.
        remaining = g.vertices
        assert len(remaining) == 1
        assert g.has_self_loop(remaining[0])

    def test_symmetry_groups_twins(self):
        g = figure9_graph()
        merged = apply_symmetry_grouping(g)
        assert merged == 2
        weights = sorted(g.weight.values())
        assert weights == [2, 3]
        assert g.n_vertices == 2
        # The two supervertices form a 2-cycle.
        assert not g.is_acyclic()

    def test_symmetry_preserves_members(self):
        g = figure9_graph()
        apply_symmetry_grouping(g)
        members = sorted(m for v in g.vertices for m in g.members[v])
        assert members == ["A", "B", "C", "D", "E"]

    def test_reduce_graph_full_pipeline(self):
        result = reduce_graph(figure9_graph(), use_symmetry=True)
        # Symmetry -> 2-cycle -> bypass -> self-loop -> forced FVS.
        assert result.graph.n_vertices == 0
        assert set(result.forced_fvs) in ({"A", "B", "E"}, {"C", "D"})

    def test_reduce_without_symmetry_is_stuck(self):
        result = reduce_graph(figure9_graph(), use_symmetry=False)
        assert result.graph.n_vertices == 5
        assert result.forced_fvs == []


class TestMfvs:
    def test_figure9_optimal(self):
        graph = figure9_graph()
        exact = exact_mfvs(graph)
        assert exact.size == 2
        assert set(exact.feedback) == {"C", "D"}

    def test_greedy_enhanced_matches_exact_on_figure9(self):
        graph = figure9_graph()
        enhanced = greedy_mfvs(graph, use_symmetry=True)
        assert enhanced.size == 2
        assert verify_feedback_set(graph, enhanced.feedback)

    def test_greedy_valid_on_random_graphs(self):
        import random

        rng = random.Random(1)
        for trial in range(10):
            edges = []
            n = rng.randint(4, 12)
            for _ in range(n * 2):
                u = f"v{rng.randrange(n)}"
                v = f"v{rng.randrange(n)}"
                edges.append((u, v))
            g = sgraph_from_edges(edges)
            for enhanced in (False, True):
                result = greedy_mfvs(g, use_symmetry=enhanced)
                assert verify_feedback_set(g, result.feedback), (trial, enhanced)

    def test_greedy_close_to_exact_on_small_graphs(self):
        import random

        rng = random.Random(7)
        for trial in range(8):
            n = rng.randint(4, 9)
            edges = [
                (f"v{rng.randrange(n)}", f"v{rng.randrange(n)}")
                for _ in range(n + rng.randrange(n))
            ]
            g = sgraph_from_edges(edges)
            exact = exact_mfvs(g)
            greedy = greedy_mfvs(g, use_symmetry=True)
            assert greedy.size <= exact.size + 2
            assert greedy.size >= exact.size

    def test_exact_size_limit(self):
        g = sgraph_from_edges(
            [(f"v{i}", f"v{(i + 1) % 30}") for i in range(30)]
        )
        with pytest.raises(SequentialError):
            exact_mfvs(g, max_vertices=24)

    def test_dispatcher(self):
        g = figure9_graph()
        assert mfvs(g, method="exact").size == 2
        assert mfvs(g, method="auto").size == 2
        assert verify_feedback_set(g, mfvs(g, method="greedy").feedback)
        with pytest.raises(SequentialError):
            mfvs(g, method="bogus")

    def test_acyclic_graph_needs_no_feedback(self):
        g = sgraph_from_edges([("a", "b"), ("b", "c")])
        assert greedy_mfvs(g).size == 0
        assert exact_mfvs(g).size == 0


class TestPartition:
    def test_fig7_partition(self, fig7):
        result = partition_sequential(fig7)
        assert result.n_feedback >= 1
        assert verify_feedback_set(result.sgraph, result.feedback_latches)
        assert result.blocks
        assert result.max_block_inputs() > 0

    def test_blocks_cover_all_logic(self, fig7):
        result = partition_sequential(fig7)
        covered = set()
        for block in result.blocks:
            covered |= block.nodes
        gate_names = {g.name for g in fig7.gates}
        assert gate_names <= covered

    def test_random_sequential_partition(self):
        net = random_sequential_network("seq", n_inputs=8, n_latches=6, n_gates=30, seed=3)
        result = partition_sequential(net)
        assert verify_feedback_set(result.sgraph, result.feedback_latches)

    def test_enhanced_no_worse_than_plain(self):
        for seed in range(5):
            net = random_sequential_network(
                "seq", n_inputs=8, n_latches=8, n_gates=40, seed=seed, twin_groups=2
            )
            plain = partition_sequential(net, enhanced=False)
            enhanced = partition_sequential(net, enhanced=True)
            assert enhanced.n_feedback <= plain.n_feedback + 1


class TestSequentialProbabilities:
    def test_combinational_shortcut(self, simple_and_or):
        result = sequential_probabilities(simple_and_or)
        assert result.converged
        assert result.iterations == 0
        assert result.latch_probabilities == {}

    def test_fixed_point_converges(self, fig7):
        result = sequential_probabilities(fig7)
        assert result.converged
        for p in result.latch_probabilities.values():
            assert 0.0 <= p <= 1.0

    def test_fixed_point_is_consistent(self, fig7):
        result = sequential_probabilities(fig7, tolerance=1e-7, max_iterations=200)
        # At the fixed point, each latch probability equals its data
        # input's probability.
        for latch in fig7.latches:
            data_p = result.probabilities[latch.fanins[0]]
            assert result.latch_probabilities[latch.name] == pytest.approx(
                data_p, abs=1e-4
            )

    def test_matches_cycle_accurate_simulation(self, fig7):
        analytic = sequential_probabilities(fig7, tolerance=1e-8, max_iterations=300)
        from repro.power.simulator import SequentialPowerSimulator

        sim = SequentialPowerSimulator(fig7)
        rates = sim.run(n_cycles=3000, n_streams=32, seed=5)
        # g1 is the observable output; analytic and simulated firing
        # rates should agree loosely (temporal correlation is ignored by
        # the analytic model).
        assert rates["g1"] == pytest.approx(analytic.probabilities["g1"], abs=0.08)
