"""Property-based tests (hypothesis) for the core invariants.

The invariants checked here are the load-bearing correctness claims of
the reproduction:

1. The inverter-free phase transform never changes circuit function,
   for any network and any phase assignment.
2. The resulting block is always inverter-free (AND/OR only).
3. BDD-computed signal probabilities equal exhaustive enumeration.
4. Property 4.1: flipping an output phase complements the realised
   probability of every gate in its (exclusive) cone.
5. The fast mask-based evaluator agrees with direct re-synthesis.
6. MFVS results always break all cycles; exact <= greedy.
7. BLIF round-trips preserve function.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bdd.builder import build_node_bdds
from repro.network.blif import parse_blif, write_blif
from repro.network.duplication import Polarity, implementation_network, phase_transform
from repro.network.netlist import GateType, LogicNetwork
from repro.network.ops import cleanup, networks_equivalent, to_aoi
from repro.phase import PhaseAssignment
from repro.power.estimator import DominoPowerModel, PhaseEvaluator, estimate_power
from repro.seq.mfvs import exact_mfvs, greedy_mfvs, verify_feedback_set
from repro.seq.sgraph import sgraph_from_edges


# ---------------------------------------------------------------------------
# Random-network strategy
# ---------------------------------------------------------------------------
@st.composite
def aoi_networks(draw, max_inputs=6, max_gates=14, max_outputs=4):
    """A random well-formed AND/OR/NOT network."""
    n_inputs = draw(st.integers(2, max_inputs))
    n_gates = draw(st.integers(1, max_gates))
    n_outputs = draw(st.integers(1, max_outputs))
    net = LogicNetwork("hyp")
    signals = []
    for i in range(n_inputs):
        net.add_input(f"x{i}")
        signals.append(f"x{i}")
    for g in range(n_gates):
        gate_type = draw(st.sampled_from([GateType.AND, GateType.OR, GateType.NOT]))
        if gate_type is GateType.NOT:
            fanin = [signals[draw(st.integers(0, len(signals) - 1))]]
        else:
            k = draw(st.integers(2, min(3, len(signals))))
            idxs = draw(
                st.lists(
                    st.integers(0, len(signals) - 1), min_size=k, max_size=k, unique=True
                )
            )
            fanin = [signals[i] for i in idxs]
        name = f"g{g}"
        net.add_gate(name, gate_type, fanin)
        signals.append(name)
    gate_names = [s for s in signals if s.startswith("g")]
    for o in range(n_outputs):
        driver = gate_names[draw(st.integers(0, len(gate_names) - 1))]
        net.add_output(f"out{o}", driver)
    net.validate()
    return net


def _assignment_for(draw_bits, net):
    return PhaseAssignment.from_bits(net.output_names(), draw_bits)


SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestPhaseTransformProperties:
    @SETTINGS
    @given(net=aoi_networks(), bits=st.integers(0, 15), data=st.data())
    def test_function_preserved(self, net, bits, data):
        a = PhaseAssignment.from_bits(net.output_names(), bits % (1 << len(net.outputs)))
        impl = phase_transform(net, a)
        # Check 8 random vectors.
        for _ in range(8):
            vec = {
                pi: data.draw(st.booleans(), label=f"v_{pi}") for pi in net.inputs
            }
            assert impl.evaluate(vec) == net.evaluate_outputs(vec)

    @SETTINGS
    @given(net=aoi_networks(), bits=st.integers(0, 15))
    def test_block_inverter_free(self, net, bits):
        a = PhaseAssignment.from_bits(net.output_names(), bits % (1 << len(net.outputs)))
        impl = phase_transform(net, a)
        for gate in impl.gates.values():
            assert gate.gate_type in (GateType.AND, GateType.OR)

    @SETTINGS
    @given(net=aoi_networks(), bits=st.integers(0, 15))
    def test_duplication_bounded_by_two(self, net, bits):
        a = PhaseAssignment.from_bits(net.output_names(), bits % (1 << len(net.outputs)))
        impl = phase_transform(net, a)
        assert 1.0 <= impl.duplication_ratio() <= 2.0

    @SETTINGS
    @given(net=aoi_networks())
    def test_implementation_network_equivalent(self, net):
        a = PhaseAssignment.all_negative(net.output_names())
        block = implementation_network(phase_transform(net, a))
        assert networks_equivalent(net, block, exhaustive_limit=6, n_vectors=64)


class TestBddProperties:
    @SETTINGS
    @given(net=aoi_networks(max_inputs=5))
    def test_probability_equals_enumeration(self, net):
        bdds = build_node_bdds(net)
        probs = {pi: 0.5 for pi in net.inputs}
        vectors = list(itertools.product([False, True], repeat=len(net.inputs)))
        for po, driver in net.outputs:
            count = sum(
                net.evaluate(dict(zip(net.inputs, bits)))[driver] for bits in vectors
            )
            assert bdds.probability(driver, probs) == pytest.approx(
                count / len(vectors)
            )

    @SETTINGS
    @given(net=aoi_networks(max_inputs=5), data=st.data())
    def test_bdd_evaluation_matches_network(self, net, data):
        bdds = build_node_bdds(net)
        vec = {pi: data.draw(st.booleans(), label=pi) for pi in net.inputs}
        values = net.evaluate(vec)
        for po, driver in net.outputs:
            assert bdds.manager.evaluate(bdds.bdd_of(driver), vec) == values[driver]


class TestEstimatorProperties:
    @SETTINGS
    @given(net=aoi_networks(), bits=st.integers(0, 15))
    def test_fast_equals_direct(self, net, bits):
        a = PhaseAssignment.from_bits(net.output_names(), bits % (1 << len(net.outputs)))
        model = DominoPowerModel(clock_cap_per_gate=0.1)
        ev = PhaseEvaluator(net, model=model, method="bdd")
        direct = estimate_power(net, a, model=model, method="bdd")
        assert ev.power(a) == pytest.approx(direct.total)
        assert ev.breakdown(a).n_gates == direct.n_gates

    @SETTINGS
    @given(net=aoi_networks())
    def test_property_4_1_probability_flip(self, net):
        """Flipping an output's phase complements A_i (Property 4.1)."""
        ev = PhaseEvaluator(net, method="bdd")
        a = PhaseAssignment.all_positive(net.output_names())
        for po in net.output_names():
            if ev.cone_size(po) == 0:
                continue
            ai = ev.average_cone_probability(a, po)
            flipped = ev.average_cone_probability(a.flipped(po), po)
            assert ai + flipped == pytest.approx(1.0)

    @SETTINGS
    @given(net=aoi_networks(), bits=st.integers(0, 15))
    def test_area_equals_transform_cells(self, net, bits):
        a = PhaseAssignment.from_bits(net.output_names(), bits % (1 << len(net.outputs)))
        ev = PhaseEvaluator(net, method="bdd")
        impl = phase_transform(net, a)
        assert ev.area(a) == impl.n_gates + impl.n_static_inverters


class TestMfvsProperties:
    @SETTINGS
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=1, max_size=20
        )
    )
    def test_feedback_sets_break_all_cycles(self, edges):
        g = sgraph_from_edges([(f"v{u}", f"v{v}") for u, v in edges])
        for enhanced in (False, True):
            result = greedy_mfvs(g, use_symmetry=enhanced)
            assert verify_feedback_set(g, result.feedback)

    @SETTINGS
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=14
        )
    )
    def test_exact_no_larger_than_greedy(self, edges):
        g = sgraph_from_edges([(f"v{u}", f"v{v}") for u, v in edges])
        exact = exact_mfvs(g)
        greedy = greedy_mfvs(g, use_symmetry=True)
        assert verify_feedback_set(g, exact.feedback)
        assert exact.size <= greedy.size


class TestBlifProperties:
    @SETTINGS
    @given(net=aoi_networks())
    def test_roundtrip_function_preserved(self, net):
        again = parse_blif(write_blif(net))
        assert networks_equivalent(net, again, exhaustive_limit=6, n_vectors=64)

    @SETTINGS
    @given(net=aoi_networks())
    def test_roundtrip_interface_preserved(self, net):
        again = parse_blif(write_blif(net))
        assert again.inputs == net.inputs
        assert again.output_names() == net.output_names()


class TestCleanupProperties:
    @SETTINGS
    @given(net=aoi_networks())
    def test_cleanup_preserves_function(self, net):
        assert networks_equivalent(net, cleanup(net), exhaustive_limit=6, n_vectors=64)

    @SETTINGS
    @given(net=aoi_networks())
    def test_to_aoi_idempotent_semantics(self, net):
        assert networks_equivalent(net, to_aoi(net), exhaustive_limit=6, n_vectors=64)
