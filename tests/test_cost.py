"""Unit tests for the Section 4.1 pairwise cost function."""

import numpy as np
import pytest

from repro.core.cost import (
    COMBOS,
    CostModelData,
    Move,
    all_pair_costs,
    best_pair_and_combo,
    cost_matrices,
    pair_cost,
)
from repro.errors import PhaseError


class TestScalarCost:
    def test_retain_retain_formula(self):
        # K(i+, j+) = |Di| Ai + |Dj| Aj + 0.5 O (Ai + Aj)
        k = pair_cost(10, 20, 0.25, 0.8, 0.3, Move.RETAIN, Move.RETAIN)
        assert k == pytest.approx(10 * 0.8 + 20 * 0.3 + 0.5 * 0.25 * 1.1)

    def test_invert_invert_formula(self):
        k = pair_cost(10, 20, 0.25, 0.8, 0.3, Move.INVERT, Move.INVERT)
        assert k == pytest.approx(10 * 0.2 + 20 * 0.7 + 0.5 * 0.25 * (0.2 + 0.7))

    def test_mixed_combos(self):
        k_pm = pair_cost(10, 20, 0.0, 0.8, 0.3, Move.RETAIN, Move.INVERT)
        k_mp = pair_cost(10, 20, 0.0, 0.8, 0.3, Move.INVERT, Move.RETAIN)
        assert k_pm == pytest.approx(10 * 0.8 + 20 * 0.7)
        assert k_mp == pytest.approx(10 * 0.2 + 20 * 0.3)

    def test_all_four_combos_present(self):
        costs = all_pair_costs(5, 5, 0.1, 0.5, 0.5)
        assert set(costs) == set(COMBOS)

    def test_symmetric_probabilities_make_combos_equal(self):
        costs = all_pair_costs(5, 5, 0.1, 0.5, 0.5)
        values = list(costs.values())
        assert all(v == pytest.approx(values[0]) for v in values)

    def test_high_probability_prefers_invert(self):
        costs = all_pair_costs(10, 10, 0.2, 0.9, 0.9)
        best = min(costs, key=costs.get)
        assert best == (Move.INVERT, Move.INVERT)


class TestCostModelData:
    def test_from_network(self, simple_and_or):
        data = CostModelData.from_network(simple_and_or)
        assert data.outputs == ["x", "y"]
        assert data.sizes.tolist() == [2.0, 2.0]
        assert data.overlap[0, 1] == pytest.approx(0.25)
        assert data.overlap[1, 0] == pytest.approx(0.25)
        assert data.overlap[0, 0] == 0.0

    def test_index_of(self, simple_and_or):
        data = CostModelData.from_network(simple_and_or)
        assert data.index_of("y") == 1
        with pytest.raises(PhaseError):
            data.index_of("zzz")


class TestVectorisedCost:
    def test_matrices_match_scalar(self, medium_random):
        data = CostModelData.from_network(medium_random)
        rng = np.random.default_rng(0)
        avg = rng.random(len(data.outputs))
        matrices = cost_matrices(data, avg)
        for (mi, mj), k in matrices.items():
            for i in range(len(data.outputs)):
                for j in range(len(data.outputs)):
                    if i == j:
                        assert np.isinf(k[i, j])
                        continue
                    expected = pair_cost(
                        data.sizes[i],
                        data.sizes[j],
                        data.overlap[i, j],
                        avg[i],
                        avg[j],
                        mi,
                        mj,
                    )
                    assert k[i, j] == pytest.approx(expected)

    def test_best_pair_respects_mask(self, medium_random):
        data = CostModelData.from_network(medium_random)
        n = len(data.outputs)
        avg = np.full(n, 0.9)
        remaining = np.zeros((n, n), dtype=bool)
        remaining[0, 1] = True
        i, j, combo, cost = best_pair_and_combo(data, avg, remaining)
        assert (i, j) == (0, 1)
        assert np.isfinite(cost)

    def test_empty_candidate_set_raises(self, medium_random):
        data = CostModelData.from_network(medium_random)
        n = len(data.outputs)
        with pytest.raises(PhaseError):
            best_pair_and_combo(data, np.full(n, 0.5), np.zeros((n, n), dtype=bool))

    def test_best_pair_finds_global_minimum(self, medium_random):
        data = CostModelData.from_network(medium_random)
        n = len(data.outputs)
        rng = np.random.default_rng(3)
        avg = rng.random(n)
        remaining = np.triu(np.ones((n, n), dtype=bool), k=1)
        i, j, combo, cost = best_pair_and_combo(data, avg, remaining)
        # Verify against brute force over every pair and combo.
        best = min(
            pair_cost(
                data.sizes[a], data.sizes[b], data.overlap[a, b], avg[a], avg[b], mi, mj
            )
            for a in range(n)
            for b in range(a + 1, n)
            for mi, mj in COMBOS
        )
        assert cost == pytest.approx(best)
