"""Tests for sweep() grid expansion, store sharing across grid points,
cost-ordered batch scheduling, and per-item timeouts."""

import time

import pytest

from repro.bench.generators import GeneratorConfig, random_control_network
from repro.bench.mcnc import spec_by_name
from repro.core.batch import (
    expand_grid,
    format_sweep,
    predicted_cost,
    run_many,
    sweep,
)
from repro.core.config import FlowConfig
from repro.errors import BatchError, ConfigError
from repro.store import ArtifactStore, RunStore

FAST = FlowConfig(n_vectors=256)


def tiny_network(name="tiny", seed=3):
    cfg = GeneratorConfig(n_inputs=10, n_outputs=4, n_gates=28, seed=seed)
    return random_control_network(name, cfg)


class TestGridExpansion:
    def test_single_axis(self):
        assert expand_grid({"n_vectors": [256, 512, 1024]}) == [
            {"n_vectors": 256},
            {"n_vectors": 512},
            {"n_vectors": 1024},
        ]

    def test_cartesian_product_counts(self):
        grid = {
            "n_vectors": [256, 512, 1024],
            "timing_slack_fraction": [0.7, 0.85],
            "input_probability": [0.3, 0.5],
        }
        points = expand_grid(grid)
        assert len(points) == 3 * 2 * 2
        assert len({tuple(sorted(p.items())) for p in points}) == 12

    def test_empty_axis_rejected(self):
        with pytest.raises(BatchError):
            expand_grid({"n_vectors": []})

    def test_empty_grid_rejected(self):
        with pytest.raises(BatchError):
            sweep([tiny_network()], {})

    def test_no_circuits_rejected(self):
        with pytest.raises(BatchError):
            sweep([], {"n_vectors": [256]})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            sweep([tiny_network()], {"not_a_knob": [1]})


class TestSweepRuns:
    def test_sweep_counts_and_point_lookup(self):
        result = sweep(
            [tiny_network("a", 3), tiny_network("b", 5)],
            {"n_vectors": [256, 512]},
            FAST,
        )
        assert result.n_points == 2
        assert result.n_items == 4
        assert result.n_ok == 4
        point = result.point(n_vectors=512)
        assert point.config.n_vectors == 512
        assert [item.name for item in point.items] == ["a", "b"]
        with pytest.raises(KeyError):
            result.point(n_vectors=9999)

    def test_sweep_matches_individual_runs(self):
        result = sweep([tiny_network()], {"n_vectors": [256, 512]}, FAST)
        for point in result.points:
            expected = run_many([tiny_network()], point.config)
            assert [i.result.row() for i in point.items] == [
                i.result.row() for i in expected.items
            ]

    def test_three_point_grid_shares_prepared_network(self, tmp_path):
        """The acceptance check: a 3-point n_vectors sweep stores the
        prepared network once and serves it to every other point."""
        store = ArtifactStore(tmp_path / "store")
        result = sweep(
            [tiny_network()],
            {"n_vectors": [256, 512, 1024]},
            FAST,
            store=store,
        )
        assert result.n_ok == 3
        stats = store.stats()
        # one shared prepare + probs entry, three of every downstream kind
        assert stats.entries["prepare"] == 1
        assert stats.entries["probs"] == 1
        assert stats.entries["flow"] == 3
        # the two later points were served the shared artefacts from disk
        assert store.hits.get("prepare", 0) == 2
        assert store.hits.get("probs", 0) == 2
        # and re-running the sweep is fully store-served
        warm = sweep(
            [tiny_network()], {"n_vectors": [256, 512, 1024]}, FAST, store=store
        )
        assert warm.n_cached == 3
        assert [
            [i.result.row() for i in p.items] for p in warm.points
        ] == [[i.result.row() for i in p.items] for p in result.points]

    def test_manifest_records_grid(self):
        result = sweep([tiny_network()], {"n_vectors": [256, 512]}, FAST)
        manifest = result.manifest()
        assert manifest["kind"] == "sweep"
        assert manifest["grid"] == {"n_vectors": [256, 512]}
        assert manifest["circuits"] == ["tiny"]
        assert [p["params"] for p in manifest["points"]] == [
            {"n_vectors": 256},
            {"n_vectors": 512},
        ]
        assert manifest["base_config"] == FAST.to_dict()
        assert all(p["n_ok"] == 1 for p in manifest["points"])

    def test_record_sweep_in_registry(self, tmp_path):
        runs = RunStore(tmp_path / "runs")
        result = sweep([tiny_network()], {"n_vectors": [256, 512]}, FAST)
        record = runs.record_sweep(result)
        loaded = runs.load(record.run_id)
        assert loaded.kind == "sweep"
        assert loaded.meta["grid"] == {"n_vectors": [256, 512]}
        assert [r["sweep_params"] for r in loaded.records] == [
            {"n_vectors": 256},
            {"n_vectors": 512},
        ]
        assert len(loaded.flow_results()) == 2

    def test_format_sweep(self):
        result = sweep([tiny_network()], {"n_vectors": [256]}, FAST)
        text = format_sweep(result)
        assert "n_vectors" in text and "1/1" in text


class TestScheduling:
    def test_predicted_cost_orders_specs(self):
        small, big = spec_by_name("frg1"), spec_by_name("x3")
        assert predicted_cost("spec", big) > predicted_cost("spec", small)

    def test_predicted_cost_network_and_path(self, tmp_path):
        net = tiny_network()
        assert predicted_cost("network", net) == float(len(net.gates)) * len(net.outputs)
        blif = tmp_path / "c.blif"
        blif.write_text("x" * 100)
        assert predicted_cost("blif", str(blif)) == 100.0
        assert predicted_cost("blif", str(tmp_path / "missing.blif")) == 0.0

    def test_cost_order_dispatches_largest_first(self):
        nets = [tiny_network("small", 3), tiny_network("big", 5)]
        # make "big" actually bigger
        cfg = GeneratorConfig(n_inputs=12, n_outputs=6, n_gates=60, seed=5)
        nets[1] = random_control_network("big", cfg)
        seen = []
        run_many(
            nets, FAST, order="cost", progress=lambda d, t, item: seen.append(item.name)
        )
        assert seen == ["big", "small"]

    def test_fifo_order_keeps_input_order(self):
        nets = [tiny_network("a", 3), tiny_network("b", 5)]
        seen = []
        run_many(
            nets, FAST, order="fifo", progress=lambda d, t, item: seen.append(item.name)
        )
        assert seen == ["a", "b"]

    def test_orders_agree_on_results(self):
        nets = [tiny_network("a", 3), tiny_network("b", 5)]
        by_cost = run_many(nets, FAST, order="cost")
        fifo = run_many(nets, FAST, order="fifo")
        assert [i.name for i in by_cost.items] == ["a", "b"]
        assert [i.result.row() for i in by_cost.items] == [
            i.result.row() for i in fifo.items
        ]

    def test_unknown_order_rejected(self):
        with pytest.raises(BatchError):
            run_many([tiny_network()], FAST, order="random")


class TestTimeouts:
    def test_bad_timeout_rejected(self):
        with pytest.raises(BatchError):
            run_many([tiny_network()], FAST, timeout_s=0)

    def test_hung_item_fails_instead_of_stalling(self, monkeypatch):
        from repro.core import pipeline as pipeline_mod

        real_prepare = pipeline_mod._stage_prepare

        def slow_prepare(ctx):
            if ctx.network.name == "hang":
                time.sleep(30)
            return real_prepare(ctx)

        monkeypatch.setattr(pipeline_mod, "_stage_prepare", slow_prepare)
        monkeypatch.setitem(
            pipeline_mod._STAGE_TABLE, "prepare", (slow_prepare, "aoi")
        )
        started = time.perf_counter()
        batch = run_many(
            [tiny_network("hang", 3), tiny_network("fine", 5)], FAST, timeout_s=0.5
        )
        assert time.perf_counter() - started < 20
        hang, fine = batch.items
        assert not hang.ok and "timeout_s" in hang.error
        assert fine.ok

    def test_fast_items_unaffected_by_timeout(self):
        batch = run_many([tiny_network()], FAST, timeout_s=60.0)
        assert batch.n_ok == 1


class TestTimeoutsOffMainThread:
    """The per-item budget must hold where a service runs jobs: off the
    main thread (no SIGALRM) the watchdog guard takes over."""

    @staticmethod
    def _run_in_thread(fn):
        import threading

        box = {}

        def target():
            try:
                box["value"] = fn()
            except BaseException as exc:  # noqa: BLE001 — reraised below
                box["error"] = exc

        t = threading.Thread(target=target)
        t.start()
        t.join(timeout=60)
        assert not t.is_alive(), "worker thread hung"
        if "error" in box:
            raise box["error"]
        return box["value"]

    def test_guard_interrupts_pure_python_loop_in_thread(self):
        from repro.core.batch import ItemTimeout, _timeout_guard

        def body():
            disarm = _timeout_guard(0.2)
            try:
                deadline = time.perf_counter() + 30.0
                while time.perf_counter() < deadline:
                    pass
                return "ran to completion"
            except ItemTimeout:
                return "interrupted"
            finally:
                disarm()

        started = time.perf_counter()
        assert self._run_in_thread(body) == "interrupted"
        assert time.perf_counter() - started < 20

    def test_run_many_timeout_enforced_from_non_main_thread(self, monkeypatch):
        from repro.core import pipeline as pipeline_mod

        real_prepare = pipeline_mod._stage_prepare

        def busy_prepare(ctx):
            if ctx.network.name == "hang":
                deadline = time.perf_counter() + 30.0
                while time.perf_counter() < deadline:  # interruptible spin
                    pass
            return real_prepare(ctx)

        monkeypatch.setattr(pipeline_mod, "_stage_prepare", busy_prepare)
        monkeypatch.setitem(
            pipeline_mod._STAGE_TABLE, "prepare", (busy_prepare, "aoi")
        )
        started = time.perf_counter()
        batch = self._run_in_thread(
            lambda: run_many(
                [tiny_network("hang", 3), tiny_network("fine", 5)],
                FAST,
                timeout_s=0.5,
            )
        )
        assert time.perf_counter() - started < 25
        hang, fine = batch.items
        assert not hang.ok and "timeout_s" in hang.error
        assert fine.ok

    def test_fast_items_unaffected_from_non_main_thread(self):
        batch = self._run_in_thread(
            lambda: run_many([tiny_network()], FAST, timeout_s=60.0)
        )
        assert batch.n_ok == 1

    def test_explicit_warning_when_unenforceable(self, monkeypatch):
        """When neither SIGALRM nor the CPython async-exc hook exists,
        the budget is dropped loudly, not silently."""
        import sys

        from repro.core import batch as batch_mod

        monkeypatch.setitem(sys.modules, "ctypes", None)  # import -> ImportError
        with pytest.warns(RuntimeWarning, match="cannot be enforced"):
            disarm = batch_mod._thread_timeout_guard(0.5)
        disarm()  # the no-op guard must still disarm cleanly
