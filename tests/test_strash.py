"""Tests for structural hashing."""

import pytest

from repro.network.netlist import GateType, LogicNetwork, SopCover
from repro.network.ops import networks_equivalent
from repro.network.strash import structural_hash


def _dup_net():
    net = LogicNetwork("dup")
    for pi in ("a", "b", "c"):
        net.add_input(pi)
    net.add_gate("g1", GateType.AND, ["a", "b"])
    net.add_gate("g2", GateType.AND, ["b", "a"])  # commutative duplicate
    net.add_gate("o1", GateType.OR, ["g1", "c"])
    net.add_gate("o2", GateType.OR, ["g2", "c"])  # cascaded duplicate
    net.add_output("o1")
    net.add_output("o2")
    return net


class TestStructuralHash:
    def test_merges_commutative_duplicates(self):
        result = structural_hash(_dup_net())
        assert result.merged == 2  # g2 merges into g1, then o2 into o1
        assert networks_equivalent(_dup_net(), result.network)

    def test_outputs_redirected(self):
        result = structural_hash(_dup_net())
        drivers = {result.network.driver_of(po) for po in ("o1", "o2")}
        assert len(drivers) == 1

    def test_idempotent(self):
        once = structural_hash(_dup_net())
        twice = structural_hash(once.network)
        assert twice.merged == 0

    def test_not_chain_merging(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_gate("n1", GateType.NOT, ["a"])
        net.add_gate("n2", GateType.NOT, ["a"])
        net.add_gate("g", GateType.OR, ["n1", "n2"])
        net.add_output("g")
        result = structural_hash(net)
        assert result.merged == 1
        assert networks_equivalent(net, result.network)

    def test_mux_is_positional(self):
        net = LogicNetwork("m")
        for pi in ("s", "d0", "d1"):
            net.add_input(pi)
        net.add_gate("m1", GateType.MUX, ["s", "d0", "d1"])
        net.add_gate("m2", GateType.MUX, ["s", "d1", "d0"])  # different!
        net.add_output("m1")
        net.add_output("m2")
        result = structural_hash(net)
        assert result.merged == 0

    def test_sop_covers_compared(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_input("b")
        c1 = SopCover(cubes=["11"], output_value="1")
        c2 = SopCover(cubes=["11"], output_value="1")
        c3 = SopCover(cubes=["11"], output_value="0")
        net.add_gate("s1", GateType.SOP, ["a", "b"], cover=c1)
        net.add_gate("s2", GateType.SOP, ["a", "b"], cover=c2)
        net.add_gate("s3", GateType.SOP, ["a", "b"], cover=c3)
        for g in ("s1", "s2", "s3"):
            net.add_output(f"po_{g}", g)
        result = structural_hash(net)
        assert result.merged == 1  # s2 merges, s3 does not

    def test_constants_merge(self):
        net = LogicNetwork("m")
        net.add_gate("c1", GateType.CONST1, [])
        net.add_gate("c2", GateType.CONST1, [])
        net.add_gate("g", GateType.OR, ["c1", "c2"])
        net.add_output("g")
        result = structural_hash(net)
        assert result.merged == 1

    def test_preserves_function_on_random(self, medium_random):
        result = structural_hash(medium_random)
        assert networks_equivalent(medium_random, result.network)
        assert len(result.network.nodes) <= len(medium_random.nodes)

    def test_latches_never_merged(self, fig7):
        before = len(fig7.latches)
        result = structural_hash(fig7)
        assert len(result.network.latches) == before

    def test_increases_overlap_for_cost_function(self):
        # After strash, the duplicated cones share nodes, so O(i,j) > 0.
        from repro.network.topo import cone_overlap, output_cones

        net = _dup_net()
        before = output_cones(net)
        assert cone_overlap(before["o1"], before["o2"]) == 0.0
        after_net = structural_hash(net).network
        after = output_cones(after_net)
        assert cone_overlap(after["o1"], after["o2"]) > 0.0
