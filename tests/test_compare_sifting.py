"""Tests for the static-vs-domino comparison and BDD order refinement."""

import pytest

from repro.bdd.sifting import sift_order
from repro.bdd.builder import build_node_bdds
from repro.bdd.ordering import domino_variable_order
from repro.bench.figures import figure10_network
from repro.errors import BddError
from repro.network.netlist import GateType, LogicNetwork
from repro.phase import PhaseAssignment
from repro.power.compare import compare_static_vs_domino
from repro.power.estimator import DominoPowerModel


class TestStaticVsDomino:
    def test_domino_costs_more(self, small_random):
        report = compare_static_vs_domino(small_random)
        assert report.ratio > 1.0
        assert report.domino_power == pytest.approx(
            report.domino_switching + report.domino_clock + report.domino_boundary
        )

    def test_ratio_in_papers_ballpark(self, medium_random):
        # "up to four times the power of an equivalent static gate" —
        # our OR-rich synthetic cones skew probabilities high, which
        # additionally starves the static reference of transitions, so
        # allow some headroom above the paper's quoted factor.
        report = compare_static_vs_domino(medium_random)
        assert 1.0 < report.ratio < 12.0

    def test_clock_load_contributes(self, small_random):
        with_clock = compare_static_vs_domino(
            small_random, model=DominoPowerModel(clock_cap_per_gate=0.5)
        )
        without = compare_static_vs_domino(
            small_random, model=DominoPowerModel(clock_cap_per_gate=0.0)
        )
        assert with_clock.ratio > without.ratio

    def test_duplication_factor(self, fig3):
        report = compare_static_vs_domino(
            fig3,
            assignment=PhaseAssignment.all_positive(["f", "g"]),
        )
        # The all-positive assignment duplicates the whole shared cone.
        assert report.duplication_factor > 1.0

    def test_skewed_inputs_shift_ratio(self, small_random):
        # At p near 1 static gates almost never switch but domino gates
        # fire nearly every cycle: the ratio explodes.
        skewed = compare_static_vs_domino(
            small_random, input_probs={pi: 0.95 for pi in small_random.inputs}
        )
        balanced = compare_static_vs_domino(small_random)
        assert skewed.ratio > balanced.ratio


class TestSiftOrder:
    def test_never_worse_than_start(self, fig10):
        result = sift_order(fig10, passes=2)
        assert result.final_size <= result.initial_size
        assert sorted(result.order) == sorted(fig10.inputs)

    def test_improves_bad_initial_order(self, fig10):
        # Start from the worst static ordering we have.
        from repro.bdd.ordering import naive_topological_order

        bad = naive_topological_order(fig10)
        result = sift_order(fig10, initial_order=bad, passes=2)
        assert result.final_size <= result.initial_size
        # The paper's heuristic already achieves 5 on this example;
        # sifting from the bad order should recover most of the gap.
        heuristic = sift_order(fig10, passes=0)
        assert result.final_size <= heuristic.initial_size + 1

    def test_order_is_valid_for_building(self, small_random):
        result = sift_order(small_random, passes=1, candidate_positions=4)
        bdds = build_node_bdds(small_random, variable_order=result.order)
        assert bdds.manager.node_count > 0

    def test_variable_limit(self):
        net = LogicNetwork("wide")
        pis = [f"x{i}" for i in range(50)]
        for pi in pis:
            net.add_input(pi)
        net.add_gate("g", GateType.OR, pis)
        net.add_output("g")
        with pytest.raises(BddError):
            sift_order(net, max_variables=40)

    def test_rebuild_count_reported(self, fig10):
        result = sift_order(fig10, passes=1, candidate_positions=3)
        assert result.rebuilds >= 1
        assert result.improvement_percent >= 0.0

    def test_paper_heuristic_is_near_sifted_quality(self, medium_random):
        """Ablation claim: the static domino ordering leaves little on
        the table compared to (rebuild-based) sifting."""
        start = domino_variable_order(medium_random)
        result = sift_order(
            medium_random, initial_order=start, passes=1, candidate_positions=4
        )
        # Sifting may improve, but not by an order of magnitude.
        assert result.final_size >= result.initial_size * 0.3
