"""Unit tests for the inverter-free phase transform."""

import pytest

from repro.errors import NetworkError
from repro.network.duplication import (
    DominoImplementation,
    Polarity,
    implementation_network,
    phase_transform,
)
from repro.network.netlist import GateType, LogicNetwork
from repro.network.ops import networks_equivalent, to_aoi, cleanup
from repro.network.topo import check_inverter_free
from repro.phase import Phase, PhaseAssignment, enumerate_assignments

from helpers import all_input_vectors


class TestFigure3Example:
    """The paper's worked example (Figures 3-5)."""

    def test_min_area_assignment_shares_everything(self, fig3_aoi):
        # f negative, g positive: the boundary inverter absorbs f's NOT
        # and both outputs share one positive cone.
        a = PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE})
        impl = phase_transform(fig3_aoi, a)
        assert impl.n_gates == 3
        assert impl.duplicated_nodes() == []
        assert impl.input_inverters == set()
        assert impl.output_inverters == ["f"]

    def test_conflicting_assignment_duplicates(self, fig3_aoi):
        # f positive demands the complement cone; g positive demands the
        # original: full duplication (Figure 4's point).
        a = PhaseAssignment({"f": Phase.POSITIVE, "g": Phase.POSITIVE})
        impl = phase_transform(fig3_aoi, a)
        assert impl.n_gates == 6
        assert impl.duplication_ratio() == pytest.approx(2.0)
        assert len(impl.input_inverters) == 4

    def test_low_power_assignment(self, fig3_aoi):
        a = PhaseAssignment({"f": Phase.POSITIVE, "g": Phase.NEGATIVE})
        impl = phase_transform(fig3_aoi, a)
        assert impl.n_gates == 3
        # Whole cone realised in negative polarity.
        assert all(pol is Polarity.NEG for (_n, pol) in impl.gates)

    def test_demorgan_duality_of_gate_types(self, fig3_aoi):
        pos = phase_transform(
            fig3_aoi, PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE})
        )
        neg = phase_transform(
            fig3_aoi, PhaseAssignment({"f": Phase.POSITIVE, "g": Phase.NEGATIVE})
        )
        for (name, _pol), gate in pos.gates.items():
            dual = neg.gates[(name, Polarity.NEG)]
            assert dual.gate_type is gate.gate_type.dual

    @pytest.mark.parametrize("bits", range(4))
    def test_all_assignments_preserve_function(self, fig3_aoi, bits):
        a = PhaseAssignment.from_bits(fig3_aoi.output_names(), bits)
        impl = phase_transform(fig3_aoi, a)
        for vec in all_input_vectors(fig3_aoi.inputs):
            assert impl.evaluate(vec) == fig3_aoi.evaluate_outputs(vec)


class TestTransformProperties:
    def test_requires_aoi_network(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("x", GateType.XOR, ["a", "b"])
        net.add_output("x")
        with pytest.raises(NetworkError):
            phase_transform(net, PhaseAssignment.all_positive(["x"]))

    def test_block_is_inverter_free(self, small_random):
        for bits in (0, 3, 9):
            a = PhaseAssignment.from_bits(small_random.output_names(), bits)
            block = implementation_network(phase_transform(small_random, a))
            offenders = check_inverter_free(block)
            # Only boundary inverters (named *_inv / *_phase_inv) allowed.
            for name in offenders:
                assert name.endswith("_inv") or "_phase_inv" in name

    def test_equivalence_on_random_network(self, small_random):
        for seed in range(3):
            a = PhaseAssignment.random(small_random.output_names(), seed=seed)
            block = implementation_network(phase_transform(small_random, a))
            assert networks_equivalent(small_random, block, n_vectors=128, seed=seed)

    def test_constant_output(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_gate("c1", GateType.CONST1, [])
        net.add_output("f", "c1")
        for phase in (Phase.POSITIVE, Phase.NEGATIVE):
            impl = phase_transform(net, PhaseAssignment({"f": phase}))
            assert impl.evaluate({"a": False})["f"] is True

    def test_output_driven_by_input(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_output("f", "a")
        impl = phase_transform(net, PhaseAssignment({"f": Phase.NEGATIVE}))
        # Negative phase on a wire: the block carries NOT(a) and the
        # boundary inverter restores it.
        assert impl.evaluate({"a": True})["f"] is True
        assert "a" in impl.input_inverters

    def test_output_driven_by_inverter_of_input(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_gate("n", GateType.NOT, ["a"])
        net.add_output("f", "n")
        impl = phase_transform(net, PhaseAssignment({"f": Phase.NEGATIVE}))
        # NOT dissolves into the boundary inverter: no input inverter.
        assert impl.input_inverters == set()
        assert impl.n_gates == 0
        assert impl.evaluate({"a": True})["f"] is False

    def test_missing_phase_raises(self, fig3_aoi):
        from repro.errors import PhaseError

        with pytest.raises(PhaseError):
            phase_transform(fig3_aoi, PhaseAssignment({"f": Phase.POSITIVE}))

    def test_deep_not_chain(self):
        net = LogicNetwork("m")
        net.add_input("a")
        prev = "a"
        for i in range(7):
            net.add_gate(f"n{i}", GateType.NOT, [prev])
            prev = f"n{i}"
        net.add_output("f", prev)
        impl = phase_transform(net, PhaseAssignment({"f": Phase.POSITIVE}))
        # Odd number of NOTs folds to one input inverter reference.
        assert impl.n_gates == 0
        assert impl.evaluate({"a": True})["f"] is False

    def test_latch_outputs_are_block_inputs(self, fig7):
        aoi = cleanup(to_aoi(fig7))
        impl = phase_transform(aoi, PhaseAssignment.all_negative(["out"]))
        vals = impl.evaluate({"a": True, "b": False, "c": True, "l0": True, "l1": True})
        ref = fig7.evaluate({"a": True, "b": False, "c": True}, state={"l0": True, "l1": True})
        assert vals["out"] == ref["g1"]


class TestImplementationStructure:
    def test_gate_probabilities_flip(self, fig3_aoi):
        a = PhaseAssignment({"f": Phase.POSITIVE, "g": Phase.POSITIVE})
        impl = phase_transform(fig3_aoi, a)
        node_probs = {"n_ab": 0.75, "n_cd": 0.25, "n_x": 0.8125}
        probs = impl.gate_probabilities(node_probs)
        assert probs[("n_ab", Polarity.POS)] == pytest.approx(0.75)
        assert probs[("n_ab", Polarity.NEG)] == pytest.approx(0.25)

    def test_topological_gate_order(self, small_random):
        a = PhaseAssignment.all_positive(small_random.output_names())
        impl = phase_transform(small_random, a)
        seen = set()
        for gate in impl.topological_gate_order():
            for ref in gate.fanins:
                if ref.kind == "gate":
                    assert ref.key in seen
            seen.add(gate.key)

    def test_stats_fields(self, fig3_aoi):
        a = PhaseAssignment({"f": Phase.POSITIVE, "g": Phase.POSITIVE})
        stats = phase_transform(fig3_aoi, a).stats()
        assert stats["domino_gates"] == 6
        assert stats["duplicated_nodes"] == 3
        assert stats["input_inverters"] == 4

    def test_instance_names_unique(self, small_random):
        a = PhaseAssignment.random(small_random.output_names(), seed=1)
        impl = phase_transform(small_random, a)
        names = [g.instance_name for g in impl.gates.values()]
        assert len(names) == len(set(names))

    def test_implementation_network_validates(self, medium_random):
        a = PhaseAssignment.random(medium_random.output_names(), seed=2)
        block = implementation_network(phase_transform(medium_random, a))
        block.validate()
        assert set(block.output_names()) == set(medium_random.output_names())
