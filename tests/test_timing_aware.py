"""Tests for the timing-aware phase optimiser (paper Section 6 future work)
and the group-extended cost function."""

import pytest

from repro.core.cost import Move, group_cost, pair_cost
from repro.core.optimizer import minimize_power
from repro.core.timing_aware import (
    PhaseTimingModel,
    minimize_power_timing_aware,
)
from repro.errors import PhaseError
from repro.network.netlist import GateType, LogicNetwork
from repro.phase import Phase, PhaseAssignment
from repro.power.estimator import PhaseEvaluator

import numpy as np


@pytest.fixture
def fig3_evaluator(fig3_aoi):
    return PhaseEvaluator(
        fig3_aoi, input_probs={pi: 0.9 for pi in fig3_aoi.inputs}, method="bdd"
    )


@pytest.fixture
def medium_evaluator(medium_random):
    return PhaseEvaluator(medium_random, method="bdd")


class TestPhaseTimingModel:
    def test_arrival_positive(self, fig3_evaluator):
        model = PhaseTimingModel(fig3_evaluator)
        a = PhaseAssignment.all_positive(fig3_evaluator.outputs)
        assert model.critical_delay(a) > 0

    def test_negative_phase_or_cone_is_slower(self, fig3_evaluator):
        # The f/g cone is OR-rich; its negative realisation is AND-rich
        # and carries series-stack penalties.
        model = PhaseTimingModel(fig3_evaluator)
        pos = model.output_arrival("g", Phase.POSITIVE)
        neg = model.output_arrival("g", Phase.NEGATIVE)
        assert neg > pos

    def test_deep_and_chain_arrival_grows(self):
        net = LogicNetwork("chain")
        net.add_input("x0")
        prev = "x0"
        for i in range(1, 6):
            net.add_input(f"x{i}")
            net.add_gate(f"g{i}", GateType.AND, [prev, f"x{i}"])
            prev = f"g{i}"
        net.add_output("out", prev)
        ev = PhaseEvaluator(net, method="bdd")
        model = PhaseTimingModel(ev)
        assert model.output_arrival("out", Phase.POSITIVE) > 4.0

    def test_monotone_in_cone_depth(self, medium_evaluator):
        model = PhaseTimingModel(medium_evaluator)
        ev = medium_evaluator
        # Larger cones never finish earlier than a trivial one.
        arrivals = [
            model.output_arrival(po, Phase.POSITIVE) for po in ev.outputs
        ]
        assert min(arrivals) >= 0.0
        assert max(arrivals) >= min(arrivals)


class TestTimingAwareOptimisation:
    def test_respects_tight_target(self, fig3_evaluator):
        model = PhaseTimingModel(fig3_evaluator)
        start = PhaseAssignment.all_positive(fig3_evaluator.outputs)
        tight = model.critical_delay(start)
        result = minimize_power_timing_aware(
            fig3_evaluator, target_delay=tight, penalty_weight=1e6
        )
        assert result.meets_target
        assert result.delay <= tight + 1e-9

    def test_loose_target_recovers_power_optimum(self, fig3_evaluator):
        result = minimize_power_timing_aware(
            fig3_evaluator, target_delay=1e9, penalty_weight=10.0
        )
        unconstrained = minimize_power(fig3_evaluator, method="exhaustive")
        assert result.power == pytest.approx(unconstrained.power)

    def test_tension_between_power_and_delay(self, fig3_evaluator):
        # With the f/g example, the power optimum uses the slow AND-rich
        # negative cone; a tight target forces a faster, hungrier choice.
        loose = minimize_power_timing_aware(fig3_evaluator, target_delay=1e9)
        model = PhaseTimingModel(fig3_evaluator)
        start = PhaseAssignment.all_positive(fig3_evaluator.outputs)
        tight = minimize_power_timing_aware(
            fig3_evaluator,
            target_delay=model.critical_delay(start),
            penalty_weight=1e6,
        )
        assert tight.delay <= loose.delay
        assert tight.power >= loose.power

    def test_pairwise_method_on_larger_circuit(self, medium_evaluator):
        result = minimize_power_timing_aware(
            medium_evaluator, method="pairwise", slack_fraction=1.1
        )
        assert result.method == "pairwise"
        assert result.power <= result.initial_power + 1e-9
        assert result.evaluations > 1

    def test_invalid_target_rejected(self, fig3_evaluator):
        with pytest.raises(PhaseError):
            minimize_power_timing_aware(fig3_evaluator, target_delay=-1.0)

    def test_unknown_method_rejected(self, fig3_evaluator):
        with pytest.raises(PhaseError):
            minimize_power_timing_aware(fig3_evaluator, method="bogus")

    def test_savings_percent(self, fig3_evaluator):
        result = minimize_power_timing_aware(fig3_evaluator, target_delay=1e9)
        assert result.savings_percent >= 0.0


class TestGroupCost:
    def test_pairwise_special_case(self):
        overlaps = np.array([[0.0, 0.3], [0.3, 0.0]])
        for mi in (Move.RETAIN, Move.INVERT):
            for mj in (Move.RETAIN, Move.INVERT):
                g = group_cost([10, 20], overlaps, [0.8, 0.4], [mi, mj])
                p = pair_cost(10, 20, 0.3, 0.8, 0.4, mi, mj)
                assert g == pytest.approx(p)

    def test_triple_cost_formula(self):
        overlaps = np.array(
            [[0.0, 0.2, 0.1], [0.2, 0.0, 0.4], [0.1, 0.4, 0.0]]
        )
        moves = [Move.RETAIN, Move.INVERT, Move.RETAIN]
        g = group_cost([5, 6, 7], overlaps, [0.9, 0.8, 0.3], moves)
        a = [0.9, 0.2, 0.3]
        expected = 5 * a[0] + 6 * a[1] + 7 * a[2]
        expected += 0.5 * (0.2 * (a[0] + a[1]) + 0.1 * (a[0] + a[2]) + 0.4 * (a[1] + a[2]))
        assert g == pytest.approx(expected)


class TestGroupwiseOptimiser:
    def test_group_size_validation(self, medium_evaluator):
        with pytest.raises(PhaseError):
            minimize_power(medium_evaluator, group_size=1)

    def test_groupwise_runs_and_improves(self, medium_evaluator):
        result = minimize_power(medium_evaluator, method="pairwise", group_size=3)
        assert result.method == "groupwise-3"
        assert result.power <= result.initial_power + 1e-9

    def test_groupwise_no_worse_than_pairwise(self, medium_evaluator):
        pw = minimize_power(medium_evaluator, method="pairwise")
        gw = minimize_power(medium_evaluator, method="pairwise", group_size=3)
        # The richer interaction model should be competitive.
        assert gw.power <= pw.power * 1.10 + 1e-9

    def test_groupwise_matches_exhaustive_on_fig3(self, fig3_evaluator):
        gw = minimize_power(fig3_evaluator, method="pairwise", group_size=2)
        ex = minimize_power(fig3_evaluator, method="exhaustive")
        assert gw.power == pytest.approx(ex.power)
