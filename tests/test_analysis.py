"""Tests for repro.analysis — the AST invariant linter.

Every rule has a fixture pair under ``tests/analysis_fixtures/<rule>/``:
``bad/`` produces exactly the expected findings (id + line), ``good/``
lints clean.  The suite also pins suppression semantics, ``--select`` /
``--ignore``, both CLI output formats, the baseline/diff workflow, the
cross-module dataflow rules (call graph, lock order, pickle boundary,
protocol liveness), and — the durable regression guard — that the real
``src/repro`` tree lints clean.
"""

import json
import os
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    Rule,
    callgraph,
    check_protocol,
    collect_files,
    extract_protocol,
    lint_paths,
    lint_sources,
    load_baseline,
    register_rule,
    rule_names,
    split_findings,
    write_baseline,
)
from repro.analysis.base import Project, SourceFile, parse_suppressions
from repro.cli import main as cli_main
from repro.errors import ConfigError

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC_TREE = Path(__file__).resolve().parents[1] / "src" / "repro"
EXAMPLES_README = Path(__file__).resolve().parents[1] / "examples" / "README.md"

# rule id -> [(path suffix, line), ...] for every expected bad-finding,
# in Finding.sort_key order
EXPECTED = {
    "monotonic-deadline": [("alias.py", 6), ("deadline.py", 5)],
    "tmp-sibling": [
        (os.path.join("store", "backends", "disk.py"), 6),
        (os.path.join("store", "writer.py"), 6),
    ],
    "seeded-rng": [("ctor.py", 7), ("ctor.py", 11), ("sampler.py", 5)],
    "no-blocking-in-async": [(os.path.join("serve", "loop.py"), 5)],
    "no-swallowed-transition": [(os.path.join("fleet", "dispatch.py"), 5)],
    "cpu-affinity": [("pool.py", 5)],
    "protocol-exhaustive": [("protocol.py", 24)],
    "key-purity": [("config_like.py", 14)],
    "documented-suppression": [("undocumented.py", 5)],
    "transitive-blocking-in-async": [(os.path.join("serve", "poller.py"), 13)],
    "lock-order": [("ledger.py", 13)],
    "pickle-boundary": [("library.py", 22)],
    "protocol-liveness": [("peers.py", 10)],
    "nondeterministic-keyed-output": [("flow.py", 29)],
    "unordered-iteration-leak": [(os.path.join("store", "payload.py"), 7)],
    "resource-exception-safety": [("worker.py", 8)],
}


def _project(mapping):
    """Build an in-memory Project from {path: source_text}."""
    return Project(
        files=[SourceFile.parse(path, text=text) for path, text in mapping.items()]
    )


def _lint_snippet(text, path="snippet.py", **kwargs):
    return lint_sources([SourceFile.parse(path, text=text)], **kwargs)


# ---------------------------------------------------------------------------
# fixture pairs


def test_every_rule_has_a_fixture_pair():
    assert sorted(EXPECTED) == rule_names()
    for rule in EXPECTED:
        assert (FIXTURES / rule / "bad").is_dir()
        assert (FIXTURES / rule / "good").is_dir()


def test_every_rule_is_documented():
    """New rules cannot land undocumented: each id must appear in the
    examples/README invariants table and the package docstring table."""
    import repro.analysis as analysis

    readme = EXAMPLES_README.read_text(encoding="utf-8")
    for rule in rule_names():
        assert f"`{rule}`" in readme, (
            f"rule {rule!r} missing from the examples/README invariants table"
        )
        assert rule in analysis.__doc__, (
            f"rule {rule!r} missing from the repro.analysis docstring table"
        )


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_bad_fixture_produces_exactly_the_expected_findings(rule):
    findings = lint_paths([str(FIXTURES / rule / "bad")], select=[rule])
    assert len(findings) == len(EXPECTED[rule]), findings
    for finding, (suffix, line) in zip(findings, EXPECTED[rule]):
        assert finding.rule == rule
        assert finding.path.endswith(suffix)
        assert finding.line == line
        assert finding.severity == "error"
        assert finding.message


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_good_fixture_is_clean(rule):
    assert lint_paths([str(FIXTURES / rule / "good")], select=[rule]) == []


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_good_fixture_is_clean_under_the_full_rule_set(rule):
    assert lint_paths([str(FIXTURES / rule / "good")]) == []


# ---------------------------------------------------------------------------
# CLI: exit codes and both output formats


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_cli_text_format_reports_the_fixture_finding(rule, capsys):
    suffix, line = EXPECTED[rule][0]
    code = cli_main(["lint", str(FIXTURES / rule / "bad"), "--select", rule])
    out = capsys.readouterr().out
    assert code == 1
    assert f"{suffix}:{line}: {rule}:" in out
    assert f"{len(EXPECTED[rule])} finding(s)" in out


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_cli_json_format_reports_the_fixture_finding(rule, capsys):
    suffix, line = EXPECTED[rule][0]
    code = cli_main(
        ["lint", str(FIXTURES / rule / "bad"), "--select", rule, "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["count"] == len(EXPECTED[rule])
    finding = payload["findings"][0]
    assert finding["rule"] == rule
    assert finding["path"].endswith(suffix)
    assert finding["line"] == line


def test_cli_clean_tree_exits_zero(capsys):
    rule = "monotonic-deadline"
    code = cli_main(["lint", str(FIXTURES / rule / "good"), "--select", rule])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out

    code = cli_main(
        ["lint", str(FIXTURES / rule / "good"), "--select", rule, "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["count"] == 0
    assert payload["findings"] == []
    assert payload["files"] == 2


def test_cli_unknown_rule_is_a_usage_error(capsys):
    assert cli_main(["lint", str(FIXTURES), "--select", "nope"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_missing_path_is_a_usage_error(capsys):
    assert cli_main(["lint", str(FIXTURES / "does-not-exist")]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in rule_names():
        assert rule in out


# ---------------------------------------------------------------------------
# suppression semantics

_VIOLATION = "import time\n\ndeadline = time.time() + 5\n"


def test_documented_suppression_silences_the_finding():
    text = _VIOLATION.replace(
        "+ 5", "+ 5  # repro: allow[monotonic-deadline] fixture needs wall clock"
    )
    assert _lint_snippet(text) == []


def test_suppression_on_the_line_above_works():
    text = (
        "import time\n"
        "\n"
        "# repro: allow[monotonic-deadline] fixture needs wall clock\n"
        "deadline = time.time() + 5\n"
    )
    assert _lint_snippet(text) == []


def test_reasonless_suppression_suppresses_nothing():
    text = _VIOLATION.replace("+ 5", "+ 5  # repro: allow[monotonic-deadline]")
    rules = {f.rule for f in _lint_snippet(text)}
    assert rules == {"monotonic-deadline", "documented-suppression"}


def test_suppression_for_a_different_rule_does_not_apply():
    text = _VIOLATION.replace(
        "+ 5", "+ 5  # repro: allow[seeded-rng] wrong rule entirely"
    )
    rules = {f.rule for f in _lint_snippet(text)}
    assert "monotonic-deadline" in rules


def test_unknown_rule_id_in_allow_comment_is_flagged():
    findings = _lint_snippet(
        "x = 1  # repro: allow[not-a-rule] stale after a rename\n",
        select=["documented-suppression"],
    )
    assert len(findings) == 1
    assert "unknown rule" in findings[0].message


def test_allow_pattern_inside_a_string_literal_is_not_a_suppression():
    text = 'HELP = "write # repro: allow[rule-id] <reason> to suppress"\n'
    assert parse_suppressions(text) == {}
    assert _lint_snippet(text, select=["documented-suppression"]) == []


def test_one_comment_can_allow_multiple_rules():
    text = (
        "import time\n"
        "\n"
        "# repro: allow[monotonic-deadline, seeded-rng] both intended here\n"
        "deadline = time.time() + 5\n"
    )
    assert _lint_snippet(text) == []


# ---------------------------------------------------------------------------
# select / ignore

_TWO_VIOLATIONS = (
    "import os\n"
    "import time\n"
    "\n"
    "\n"
    "def jobs(timeout_s):\n"
    "    deadline = time.time() + timeout_s\n"
    "    return os.cpu_count(), deadline\n"
)


def test_select_narrows_to_the_named_rules():
    findings = _lint_snippet(_TWO_VIOLATIONS, select=["monotonic-deadline"])
    assert {f.rule for f in findings} == {"monotonic-deadline"}


def test_ignore_drops_the_named_rules():
    findings = _lint_snippet(_TWO_VIOLATIONS, ignore=["monotonic-deadline"])
    assert {f.rule for f in findings} == {"cpu-affinity"}


def test_unknown_rule_in_select_or_ignore_raises():
    with pytest.raises(ConfigError):
        _lint_snippet(_TWO_VIOLATIONS, select=["bogus"])
    with pytest.raises(ConfigError):
        _lint_snippet(_TWO_VIOLATIONS, ignore=["bogus"])


def test_cli_comma_separated_and_repeated_flags(capsys):
    bad = str(FIXTURES / "cpu-affinity" / "bad")
    code = cli_main(
        ["lint", bad, "--select", "cpu-affinity,seeded-rng", "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["count"] == 1
    code = cli_main(["lint", bad, "--ignore", "cpu-affinity"])
    capsys.readouterr()
    assert code == 0


# ---------------------------------------------------------------------------
# engine behaviour


def test_syntax_error_becomes_a_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def nope(:\n", encoding="utf-8")
    findings = lint_paths([str(path)])
    assert len(findings) == 1
    assert findings[0].rule == "syntax-error"
    assert "syntax error" in findings[0].message


def test_collect_files_expands_dedups_and_sorts(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
    sub = tmp_path / "pkg"
    sub.mkdir()
    (sub / "c.py").write_text("x = 1\n", encoding="utf-8")
    files = collect_files([str(tmp_path), str(tmp_path / "a.py")])
    assert [Path(f).name for f in files] == ["a.py", "b.py", "c.py"]


def test_collect_files_missing_path_raises():
    with pytest.raises(ConfigError):
        collect_files(["/no/such/path/anywhere"])


def test_findings_are_sorted_and_serializable():
    findings = _lint_snippet(_TWO_VIOLATIONS)
    assert findings == sorted(findings, key=Finding.sort_key)
    for finding in findings:
        round_tripped = json.loads(json.dumps(finding.to_dict()))
        assert round_tripped["rule"] == finding.rule
        assert finding.format().startswith(f"{finding.path}:{finding.line}:")


def test_registry_rejects_duplicates_and_unknowns():
    with pytest.raises(ConfigError):

        @register_rule("monotonic-deadline")
        class Duplicate(Rule):
            pass

    from repro.analysis import get_rule_class

    with pytest.raises(ConfigError):
        get_rule_class("never-registered")
    assert rule_names() == sorted(rule_names())


# ---------------------------------------------------------------------------
# rule-specific edges beyond the fixture pairs


def test_monotonic_deadline_catches_comparisons():
    text = (
        "import time\n"
        "\n"
        "\n"
        "def expired(deadline):\n"
        "    return time.time() >= deadline\n"
    )
    findings = _lint_snippet(text, select=["monotonic-deadline"])
    assert [f.line for f in findings] == [5]


def test_monotonic_deadline_respects_import_aliases():
    text = "from time import time\n\ndeadline = time() + 1\n"
    findings = _lint_snippet(text, select=["monotonic-deadline"])
    assert [f.line for f in findings] == [3]


def test_tmp_sibling_flags_tempfile_apis(tmp_path):
    store = tmp_path / "store"
    store.mkdir()
    path = store / "writer.py"
    path.write_text(
        "import tempfile\n\nhandle = tempfile.NamedTemporaryFile()\n",
        encoding="utf-8",
    )
    findings = lint_paths([str(path)], select=["tmp-sibling"])
    assert [f.line for f in findings] == [3]


def test_tmp_sibling_only_applies_under_store(tmp_path):
    path = tmp_path / "elsewhere.py"
    path.write_text('tmp = "out.tmp"\n', encoding="utf-8")
    assert lint_paths([str(path)], select=["tmp-sibling"]) == []


def test_seeded_rng_catches_numpy_global_draws():
    text = "import numpy as np\n\nnoise = np.random.rand(4)\n"
    findings = _lint_snippet(text, select=["seeded-rng"])
    assert [f.line for f in findings] == [3]


def test_no_blocking_in_async_ignores_awaited_results():
    text = (
        "async def run(service, job_id):\n"
        "    return await service.result(job_id)\n"
    )
    assert _lint_snippet(text, select=["no-blocking-in-async"]) == []


def test_key_purity_flags_unknown_fields():
    text = (
        "class Config:\n"
        "    model: str\n"
        "\n"
        "    def cache_key(self):\n"
        "        return (self.model, self.vanished)\n"
        "\n"
        "    def result_key(self):\n"
        "        return self.cache_key()\n"
    )
    findings = _lint_snippet(text, select=["key-purity"])
    assert len(findings) == 1
    assert "vanished" in findings[0].message
    assert findings[0].line == 5


# ---------------------------------------------------------------------------
# the cross-module call graph


def test_callgraph_resolves_cross_module_calls():
    project = _project(
        {
            "pkg/util.py": "def helper():\n    return 1\n",
            "pkg/main.py": (
                "from pkg.util import helper\n"
                "\n"
                "\n"
                "def run():\n"
                "    return helper()\n"
            ),
        }
    )
    graph = callgraph(project)
    edges = graph.callees("pkg.main::run")
    assert [e.callee for e in edges] == ["pkg.util::helper"]
    assert not edges[0].offthread


def test_callgraph_marks_executor_submissions_offthread():
    project = _project(
        {
            "work.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "\n"
                "\n"
                "def task(x):\n"
                "    return x\n"
                "\n"
                "\n"
                "def run(xs):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return [pool.submit(task, x) for x in xs]\n"
            ),
        }
    )
    graph = callgraph(project)
    edges = graph.callees("work::run")
    assert [(e.callee, e.offthread) for e in edges] == [("work::task", True)]


def test_callgraph_resolves_methods_on_annotated_receivers():
    project = _project(
        {
            "svc.py": (
                "class Store:\n"
                "    def get(self, key):\n"
                "        return key\n"
                "\n"
                "\n"
                "def read(store: Store, key):\n"
                "    return store.get(key)\n"
            ),
        }
    )
    graph = callgraph(project)
    assert [e.callee for e in graph.callees("svc::read")] == ["svc::Store.get"]


def test_callgraph_leaves_uninferable_receivers_unresolved():
    """`obj.get()` with no type evidence must resolve to nothing — by-name
    dispatch would flood the dataflow rules with false edges."""
    project = _project(
        {
            "svc.py": (
                "class Store:\n"
                "    def get(self, key):\n"
                "        return key\n"
                "\n"
                "\n"
                "def read(store, key):\n"
                "    return store.get(key)\n"
            ),
        }
    )
    graph = callgraph(project)
    assert graph.callees("svc::read") == []


def test_callgraph_is_cached_per_project():
    project = _project({"m.py": "def f():\n    pass\n"})
    assert callgraph(project) is callgraph(project)


# ---------------------------------------------------------------------------
# cross-module rule edges beyond the fixture pairs


def test_transitive_blocking_found_two_frames_deep():
    project = _project(
        {
            "deep.py": (
                "import time\n"
                "\n"
                "\n"
                "def inner():\n"
                "    time.sleep(1)\n"
                "\n"
                "\n"
                "def outer():\n"
                "    inner()\n"
                "\n"
                "\n"
                "async def handler():\n"
                "    outer()\n"
            ),
        }
    )
    findings = lint_sources(project.files, select=["transitive-blocking-in-async"])
    assert len(findings) == 1
    assert findings[0].line == 13
    assert "outer() -> inner()" in findings[0].message


def test_transitive_blocking_skips_run_in_executor_chains():
    project = _project(
        {
            "offload.py": (
                "import asyncio\n"
                "import time\n"
                "\n"
                "\n"
                "def slow():\n"
                "    time.sleep(1)\n"
                "\n"
                "\n"
                "async def handler():\n"
                "    loop = asyncio.get_running_loop()\n"
                "    await loop.run_in_executor(None, slow)\n"
            ),
        }
    )
    assert lint_sources(project.files, select=["transitive-blocking-in-async"]) == []


def test_lock_order_flags_await_under_threading_lock():
    project = _project(
        {
            "mixed.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Broker:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    async def publish(self, send):\n"
                "        with self._lock:\n"
                "            await send()\n"
            ),
        }
    )
    findings = lint_sources(project.files, select=["lock-order"])
    assert len(findings) == 1
    assert findings[0].line == 10
    assert "await while holding threading lock" in findings[0].message


def test_lock_order_allows_await_under_asyncio_lock():
    project = _project(
        {
            "fine.py": (
                "import asyncio\n"
                "\n"
                "\n"
                "class Broker:\n"
                "    def __init__(self):\n"
                "        self._lock = asyncio.Lock()\n"
                "\n"
                "    async def publish(self, send):\n"
                "        async with self._lock:\n"
                "            await send()\n"
            ),
        }
    )
    assert lint_sources(project.files, select=["lock-order"]) == []


def test_lock_order_follows_calls_while_holding_a_lock():
    """A cycle split across two methods connected by a call is still a
    cycle: record() holds A and calls a helper that takes B; flush()
    takes them in the B -> A order."""
    project = _project(
        {
            "split.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Buffered:\n"
                "    def __init__(self):\n"
                "        self._a = threading.Lock()\n"
                "        self._b = threading.Lock()\n"
                "\n"
                "    def _bump(self):\n"
                "        with self._b:\n"
                "            pass\n"
                "\n"
                "    def record(self):\n"
                "        with self._a:\n"
                "            self._bump()\n"
                "\n"
                "    def flush(self):\n"
                "        with self._b:\n"
                "            with self._a:\n"
                "                pass\n"
            ),
        }
    )
    findings = lint_sources(project.files, select=["lock-order"])
    assert len(findings) == 1
    assert "lock-order cycle" in findings[0].message
    assert "Buffered._a" in findings[0].message
    assert "Buffered._b" in findings[0].message


def test_lock_order_flags_nonreentrant_reentry():
    project = _project(
        {
            "reenter.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Counter:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def bump(self):\n"
                "        with self._lock:\n"
                "            self.read()\n"
                "\n"
                "    def read(self):\n"
                "        with self._lock:\n"
                "            return 0\n"
            ),
        }
    )
    findings = lint_sources(project.files, select=["lock-order"])
    assert len(findings) == 1
    assert "re-acquired while already held" in findings[0].message
    assert findings[0].line == 10


def test_pickle_boundary_honours_custom_reduce():
    """The good fixture's CellLibrary carries a Lock but defines
    __reduce__ — exactly the ArtifactStore pattern — so it may cross."""
    findings = lint_paths(
        [str(FIXTURES / "pickle-boundary" / "good")], select=["pickle-boundary"]
    )
    assert findings == []


def test_pickle_boundary_ignores_thread_pools():
    project = _project(
        {
            "threads.py": (
                "import threading\n"
                "from concurrent.futures import ThreadPoolExecutor\n"
                "\n"
                "\n"
                "class Shared:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "\n"
                "def run():\n"
                "    shared = Shared()\n"
                "    with ThreadPoolExecutor() as pool:\n"
                "        return pool.submit(id, shared)\n"
            ),
        }
    )
    assert lint_sources(project.files, select=["pickle-boundary"]) == []


def test_pickle_boundary_flags_tainted_bound_methods():
    project = _project(
        {
            "bound.py": (
                "import threading\n"
                "from concurrent.futures import ProcessPoolExecutor\n"
                "\n"
                "\n"
                "class Worker:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def step(self, x):\n"
                "        return x\n"
                "\n"
                "\n"
                "def run(w: Worker):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return pool.submit(w.step, 1)\n"
            ),
        }
    )
    findings = lint_sources(project.files, select=["pickle-boundary"])
    assert len(findings) == 1
    assert "bound method" in findings[0].message


# ---------------------------------------------------------------------------
# protocol-liveness: the model and the seeded-defect drill


def _fleet_project():
    fleet = SRC_TREE / "fleet"
    return Project(
        files=[
            SourceFile.parse(str(path)) for path in sorted(fleet.glob("*.py"))
        ]
    )


def test_fleet_protocol_model_extraction():
    model = extract_protocol(_fleet_project())
    assert len(model.messages) == 12
    assert set(model.roles) == {"Coordinator", "Worker"}
    # every coordinator send has a worker handler and vice versa
    assert check_protocol(model) == []
    coordinator, worker = model.roles["Coordinator"], model.roles["Worker"]
    assert set(coordinator.sends) <= set(worker.handles)
    assert set(worker.sends) <= set(coordinator.handles)


def test_protocol_liveness_catches_a_seeded_handler_drop():
    """Drop one message type from the worker's handler table and the
    checker must report the coordinator's now-unheard send."""
    model = extract_protocol(_fleet_project())
    assert "Quarantine" in model.roles["Worker"].handles
    del model.roles["Worker"].handles["Quarantine"]
    problems = check_protocol(model)
    assert len(problems) == 1
    _, _, message = problems[0]
    assert "Coordinator sends Quarantine" in message
    assert "no peer role" in message


def test_protocol_liveness_catches_a_seeded_stranded_state():
    """Erase the exit evidence for a non-terminal state and the checker
    must flag it as stranded."""
    model = extract_protocol(_fleet_project())
    machine = next(m for m in model.machines if m.name == "FLEET_JOB_STATES")
    machine.exited.discard("leased")
    problems = check_protocol(model)
    assert any("state 'leased'" in message for _, _, message in problems)


def test_protocol_liveness_state_tuples_from_snippets():
    project = _project(
        {
            "machine.py": (
                'TASK_STATES = ("idle", "busy", "stuck")\n'
                "\n"
                "\n"
                "class Task:\n"
                "    def start(self):\n"
                '        if self.state == "idle":\n'
                '            self.state = "busy"\n'
                "\n"
                "    def reset(self):\n"
                '        if self.state == "busy":\n'
                '            self.state = "idle"\n'
                "\n"
                "    def jam(self):\n"
                '        if self.state == "busy":\n'
                '            self.state = "stuck"\n'
            ),
        }
    )
    findings = lint_sources(project.files, select=["protocol-liveness"])
    assert len(findings) == 1
    assert "state 'stuck'" in findings[0].message
    assert "never" not in findings[0].message  # it IS entered; it cannot leave


# ---------------------------------------------------------------------------
# baseline / diff workflow


_BASELINE_VIOLATION = "import time\n\ndeadline = time.time() + 5\n"


def test_baseline_round_trip_and_split(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(_BASELINE_VIOLATION, encoding="utf-8")
    findings = lint_paths([str(bad)], select=["monotonic-deadline"])
    assert len(findings) == 1

    baseline_path = tmp_path / "baseline.json"
    written = write_baseline(findings, str(baseline_path))
    assert len(written.entries) == 1
    assert written.undocumented() == written.entries  # reasons start empty

    loaded = load_baseline(str(baseline_path))
    new, old = split_findings(findings, loaded)
    assert new == [] and old == findings

    # baseline matching is line-insensitive: shift the finding down
    bad.write_text("import time\n\n\n" + _BASELINE_VIOLATION.split("\n", 2)[2],
                   encoding="utf-8")
    moved = lint_paths([str(bad)], select=["monotonic-deadline"])
    assert moved[0].line != findings[0].line
    new, old = split_findings(moved, loaded)
    assert new == [] and old == moved


def test_baseline_load_rejects_garbage(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(ConfigError):
        load_baseline(str(missing))
    bad = tmp_path / "bad.json"
    bad.write_text("not json", encoding="utf-8")
    with pytest.raises(ConfigError):
        load_baseline(str(bad))
    bad.write_text('{"version": 99, "findings": []}', encoding="utf-8")
    with pytest.raises(ConfigError):
        load_baseline(str(bad))


def test_cli_baseline_gates_only_new_findings(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text(_BASELINE_VIOLATION, encoding="utf-8")
    baseline_path = tmp_path / "baseline.json"

    code = cli_main(
        ["lint", str(bad), "--select", "monotonic-deadline",
         "--write-baseline", str(baseline_path)]
    )
    assert code == 0
    assert "1 baseline entry" in capsys.readouterr().out

    # baselined finding: exit 0, listed with the [baselined] marker
    code = cli_main(
        ["lint", str(bad), "--select", "monotonic-deadline",
         "--baseline", str(baseline_path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "[baselined]" in out
    assert "no new findings" in out

    # --diff hides the baselined listing entirely
    code = cli_main(
        ["lint", str(bad), "--select", "monotonic-deadline",
         "--baseline", str(baseline_path), "--diff"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "[baselined]" not in out

    # a new violation (distinct message, so outside the baseline key)
    # still fails the run
    bad.write_text(
        _BASELINE_VIOLATION
        + "\n\ndef wait(t):\n    started = time.time()\n    return started + t\n",
        encoding="utf-8",
    )
    code = cli_main(
        ["lint", str(bad), "--select", "monotonic-deadline",
         "--baseline", str(baseline_path), "--diff", "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["new_count"] == 1
    assert payload["baselined_count"] == 1
    assert "baselined" not in payload  # --diff drops the accepted listing


def test_repo_baseline_is_empty_and_documented():
    """The committed baseline stays honest: src is clean, so it must be
    empty, and any future entry must carry a reason."""
    committed = Path(__file__).resolve().parents[1] / ".lint-baseline.json"
    baseline = load_baseline(str(committed))
    assert baseline.entries == []
    assert baseline.undocumented() == []


# ---------------------------------------------------------------------------
# the regression guards for this PR's fixes


def test_real_source_tree_lints_clean():
    findings = lint_paths([str(SRC_TREE)])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_default_jobs_respects_scheduling_affinity(monkeypatch):
    import repro.core.batch as batch

    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(9)))

    def boom():  # pragma: no cover - must never run
        raise AssertionError("default_jobs must not consult os.cpu_count")

    monkeypatch.setattr(os, "cpu_count", boom)
    assert batch.default_jobs() == 8


def test_worker_session_has_no_blocking_calls():
    worker = SRC_TREE / "fleet" / "worker.py"
    assert lint_paths([str(worker)], select=["no-blocking-in-async"]) == []


# ---------------------------------------------------------------------------
# effect inference (PR 9): summaries, chains, and the keyed-output rule


def test_effect_engine_infers_transitive_effects():
    from repro.analysis.effects import effect_engine

    project = _project(
        {
            "pipe.py": (
                "import time\n"
                "from concurrent.futures import ThreadPoolExecutor\n"
                "\n"
                "\n"
                "def leaf():\n"
                "    return time.time()\n"
                "\n"
                "\n"
                "def middle():\n"
                "    return leaf() + 1\n"
                "\n"
                "\n"
                "def offthread():\n"
                "    with ThreadPoolExecutor() as pool:\n"
                "        return pool.submit(leaf).result()\n"
                "\n"
                "\n"
                "def pure(x):\n"
                "    return x * 2\n"
            ),
        }
    )
    engine = effect_engine(project)
    assert engine.summary("pipe::leaf") == {"reads-wall-clock"}
    assert engine.summary("pipe::middle") == {"reads-wall-clock"}
    # executor submissions still compute the result: effects propagate
    assert engine.summary("pipe::offthread") == {"reads-wall-clock"}
    assert engine.summary("pipe::pure") == frozenset()


def test_effect_chain_ends_at_the_primitive_site():
    from repro.analysis.effects import effect_engine

    project = _project(
        {
            "chain.py": (
                "import random\n"
                "\n"
                "\n"
                "def draw():\n"
                "    return random.random()\n"
                "\n"
                "\n"
                "def outer():\n"
                "    return draw()\n"
            ),
        }
    )
    engine = effect_engine(project)
    chain = engine.chain("chain::outer", "draws-unseeded-rng")
    assert chain[0].startswith("outer() calls draw()")
    assert "random.random" in chain[-1]
    assert "chain.py:5" in chain[-1]


def test_timing_measurement_is_not_a_determinism_effect():
    """monotonic()/perf_counter() measure durations (runtime_s in
    results is accepted metadata); they must not poison summaries."""
    from repro.analysis.effects import effect_engine

    project = _project(
        {
            "timing.py": (
                "import time\n"
                "\n"
                "\n"
                "def timed(fn):\n"
                "    start = time.perf_counter()\n"
                "    out = fn()\n"
                "    return out, time.perf_counter() - start\n"
            ),
        }
    )
    engine = effect_engine(project)
    assert engine.summary("timing::timed") == frozenset()


def test_keyed_output_seeded_defect_reports_witness_chain():
    """The seeded-defect drill: the bad fixture's finding must carry the
    full inference chain from the put site to time.time()."""
    rule = "nondeterministic-keyed-output"
    findings = lint_paths([str(FIXTURES / rule / "bad")], select=[rule])
    assert len(findings) == 1
    chain = findings[0].chain
    assert chain, "keyed-output findings must carry a witness chain"
    assert any("payload origin: stage_measure()" in step for step in chain)
    assert "time.time()" in chain[-1]
    assert chain[-1].endswith(":20")


def test_keyed_output_traces_stage_table_indirection():
    """`fn, slot = TABLE[name]` then `overrides.get(name, fn)(ctx)` —
    the pipeline's dispatch shape — must still reach the stage."""
    project = _project(
        {
            "mini.py": (
                "import time\n"
                "\n"
                "\n"
                "def stage_bad(ctx):\n"
                "    return {'stamp': time.time()}\n"
                "\n"
                "\n"
                "_TABLE = {'bad': (stage_bad, 'slot')}\n"
                "\n"
                "\n"
                "def result_key(name):\n"
                "    return name\n"
                "\n"
                "\n"
                "class Pipeline:\n"
                "    def run(self, store, name, ctx, overrides):\n"
                "        fn, slot = _TABLE[name]\n"
                "        output = overrides.get(name, fn)(ctx)\n"
                "        store.put('k', result_key(name), output)\n"
                "        return output\n"
            ),
        }
    )
    findings = lint_sources(
        project.files, select=["nondeterministic-keyed-output"]
    )
    assert len(findings) == 1
    assert "stage_bad()" in findings[0].message
    assert "reads-wall-clock" in findings[0].message


def test_keyed_output_drill_on_the_real_pipeline():
    """Wire-through guard: inject a wall-clock read into a real stage
    function and the rule must flag the pipeline's keyed put sites."""
    files = []
    for path in sorted(SRC_TREE.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        if path.name == "pipeline.py" and "core" in path.parts:
            assert "def _stage_measure(" in text
            text = text.replace(
                "def _stage_measure(",
                "def _defect_now():\n"
                "    import time\n"
                "    return time.time()\n"
                "\n"
                "\n"
                "def _stage_measure(",
                1,
            ).replace(
                "    from repro.core.flow import FlowResult, SynthesisVariant\n",
                "    from repro.core.flow import FlowResult, SynthesisVariant\n"
                "    _defect = _defect_now()\n",
                1,
            )
            assert "_defect = _defect_now()" in text
        files.append(SourceFile.parse(str(path), text=text))
    findings = lint_sources(files, select=["nondeterministic-keyed-output"])
    assert findings, "seeded wall-clock defect in _stage_measure not caught"
    assert all("_stage_measure()" in f.message for f in findings)
    assert all(f.chain for f in findings)


def test_unordered_leak_flags_sum_over_set_as_float_order():
    project = _project(
        {
            "store/agg.py": (
                "def total(values):\n"
                "    pending = set(values)\n"
                "    return sum(pending)\n"
            ),
        }
    )
    findings = lint_sources(project.files, select=["unordered-iteration-leak"])
    assert len(findings) == 1
    assert "float addition is order-sensitive" in findings[0].message


def test_unordered_leak_ignores_order_insensitive_reductions():
    project = _project(
        {
            "store/agg.py": (
                "def stats(values):\n"
                "    pending = set(values)\n"
                "    return len(pending), min(pending), max(pending)\n"
            ),
        }
    )
    assert lint_sources(project.files, select=["unordered-iteration-leak"]) == []


def test_unordered_leak_only_applies_to_payload_producing_dirs():
    project = _project(
        {
            "misc/agg.py": (
                "def rows(values):\n"
                "    return [v for v in set(values)]\n"
            ),
        }
    )
    assert lint_sources(project.files, select=["unordered-iteration-leak"]) == []


def test_resource_rule_flags_success_path_only_release():
    project = _project(
        {
            "locks.py": (
                "import threading\n"
                "\n"
                "_LOCK = threading.Lock()\n"
                "\n"
                "\n"
                "def update(value):\n"
                "    _LOCK.acquire()\n"
                "    result = value * 2\n"
                "    _LOCK.release()\n"
                "    return result\n"
            ),
        }
    )
    findings = lint_sources(project.files, select=["resource-exception-safety"])
    assert len(findings) == 1
    assert "success path" in findings[0].message


def test_resource_rule_seeded_helper_split_drill():
    """Remove the release from the helper the finally delegates to and
    the rule must catch the now-leaking executor."""
    good = (FIXTURES / "resource-exception-safety" / "good" / "worker.py").read_text(
        encoding="utf-8"
    )
    broken = good.replace("ctx.executor.shutdown(wait=True)", "pass")
    assert broken != good
    findings = lint_sources(
        [SourceFile.parse("worker.py", text=broken)],
        select=["resource-exception-safety"],
    )
    assert any("ctx.executor" in f.message for f in findings)
    assert all(f.chain for f in findings)


def test_resource_rule_attribute_release_in_sibling_method():
    project = _project(
        {
            "svc.py": (
                "import socket\n"
                "\n"
                "\n"
                "class Client:\n"
                "    def connect(self, host):\n"
                "        self.sock = socket.create_connection((host, 1))\n"
                "\n"
                "    def close(self):\n"
                "        self.sock.close()\n"
            ),
        }
    )
    assert lint_sources(project.files, select=["resource-exception-safety"]) == []


# ---------------------------------------------------------------------------
# the summary cache (PR 9)


_CACHE_PROJECT = {
    "flow.py": (
        "import time\n"
        "\n"
        "\n"
        "def cache_key(config):\n"
        "    return repr(config)\n"
        "\n"
        "\n"
        "def stage(config):\n"
        "    return {'stamp': time.time()}\n"
        "\n"
        "\n"
        "def execute_one(store, config):\n"
        "    output = stage(config)\n"
        "    store.put('r', cache_key(config), output)\n"
        "    return output\n"
    ),
    "util.py": "def double(x):\n    return x * 2\n",
}


def _write_cache_project(root):
    for name, text in _CACHE_PROJECT.items():
        (root / name).write_text(text, encoding="utf-8")


def test_cache_warm_run_parses_zero_files_and_is_byte_identical(tmp_path):
    from unittest import mock

    from repro.analysis import format_json, run_lint

    proj = tmp_path / "proj"
    proj.mkdir()
    _write_cache_project(proj)
    cache_dir = str(tmp_path / "cache")

    cold = run_lint([str(proj)], cache=True, cache_dir=cache_dir)
    assert cold.cache_status == "cold"
    assert cold.parsed_files == 2
    assert len(cold.findings) == 1  # the keyed wall-clock defect

    with mock.patch.object(
        SourceFile, "parse", side_effect=AssertionError("parsed on a warm run")
    ):
        warm = run_lint([str(proj)], cache=True, cache_dir=cache_dir)
    assert warm.cache_status == "warm"
    assert warm.parsed_files == 0
    assert warm.reused_files == 2
    assert format_json(warm.findings, warm.n_files) == format_json(
        cold.findings, cold.n_files
    )
    # chains survive the round trip byte-for-byte
    assert warm.findings[0].chain == cold.findings[0].chain


def test_cache_file_edit_invalidates_only_that_file(tmp_path):
    from repro.analysis import run_lint

    proj = tmp_path / "proj"
    proj.mkdir()
    _write_cache_project(proj)
    cache_dir = str(tmp_path / "cache")

    run_lint([str(proj)], cache=True, cache_dir=cache_dir)
    (proj / "util.py").write_text(
        "def double(x):\n    return x + x\n", encoding="utf-8"
    )
    edited = run_lint([str(proj)], cache=True, cache_dir=cache_dir)
    assert edited.cache_status == "partial"
    assert edited.reused_files >= 1
    assert len(edited.findings) == 1

    # with only per-file rules selected, the unchanged file is not parsed
    run_lint(
        [str(proj)], select=["seeded-rng"], cache=True, cache_dir=cache_dir
    )
    (proj / "util.py").write_text(
        "def double(x):\n    return 2 * x\n", encoding="utf-8"
    )
    partial = run_lint(
        [str(proj)], select=["seeded-rng"], cache=True, cache_dir=cache_dir
    )
    assert partial.cache_status == "partial"
    assert partial.parsed_files == 1


def test_cache_rule_set_fingerprint_invalidates(tmp_path, monkeypatch):
    from repro.analysis import run_lint
    from repro.analysis import summary_cache as sc

    proj = tmp_path / "proj"
    proj.mkdir()
    _write_cache_project(proj)
    cache_dir = str(tmp_path / "cache")

    first = run_lint([str(proj)], cache=True, cache_dir=cache_dir)
    assert first.cache_status == "cold"

    # simulate editing a rule: the fingerprint changes, the cache is void
    monkeypatch.setattr(sc, "ruleset_fingerprint", lambda: "0" * 64)
    stale = run_lint([str(proj)], cache=True, cache_dir=cache_dir)
    assert stale.cache_status == "cold"
    assert stale.parsed_files == 2
    monkeypatch.undo()

    warm = run_lint([str(proj)], cache=True, cache_dir=cache_dir)
    assert warm.cache_status == "cold"  # the stale run overwrote the store
    again = run_lint([str(proj)], cache=True, cache_dir=cache_dir)
    assert again.cache_status == "warm"


def test_cache_corruption_degrades_to_cold(tmp_path):
    from repro.analysis import run_lint

    proj = tmp_path / "proj"
    proj.mkdir()
    _write_cache_project(proj)
    cache_dir = tmp_path / "cache"

    run_lint([str(proj)], cache=True, cache_dir=str(cache_dir))
    (cache_dir / "summaries.json").write_text("{definitely not json", "utf-8")
    recovered = run_lint([str(proj)], cache=True, cache_dir=str(cache_dir))
    assert recovered.cache_status == "cold"
    assert len(recovered.findings) == 1


def test_run_lint_without_cache_matches_lint_paths(tmp_path):
    from repro.analysis import run_lint

    proj = tmp_path / "proj"
    proj.mkdir()
    _write_cache_project(proj)
    report = run_lint([str(proj)])
    assert report.cache_status == "off"
    assert report.findings == lint_paths([str(proj)])


def test_cli_cache_status_goes_to_stderr(tmp_path, capsys):
    proj = tmp_path / "proj"
    proj.mkdir()
    _write_cache_project(proj)
    cache_dir = str(tmp_path / "cache")

    code = cli_main(
        ["lint", str(proj), "--cache", "--cache-dir", cache_dir]
    )
    cold = capsys.readouterr()
    assert code == 1
    assert "cache cold" in cold.err

    code = cli_main(
        ["lint", str(proj), "--cache", "--cache-dir", cache_dir]
    )
    warm = capsys.readouterr()
    assert code == 1
    assert "cache warm" in warm.err
    assert "0 file(s) parsed" in warm.err
    assert warm.out == cold.out  # stdout stays byte-identical


# ---------------------------------------------------------------------------
# --explain (PR 9)


def test_cli_explain_prints_the_inference_chain(capsys):
    rule = "nondeterministic-keyed-output"
    code = cli_main(
        [
            "lint",
            str(FIXTURES / rule / "bad"),
            "--select",
            rule,
            "--explain",
            f"{rule}:flow.py:29",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "inference chain:" in out
    assert "payload origin: stage_measure()" in out
    assert "time.time()" in out


def test_cli_explain_syntactic_finding_has_no_chain(capsys):
    rule = "monotonic-deadline"
    suffix, line = EXPECTED[rule][0]
    code = cli_main(
        [
            "lint",
            str(FIXTURES / rule / "bad"),
            "--select",
            rule,
            "--explain",
            f"{rule}:{suffix}:{line}",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "direct syntactic finding" in out


def test_cli_explain_miss_lists_candidates_and_fails(capsys):
    rule = "nondeterministic-keyed-output"
    code = cli_main(
        [
            "lint",
            str(FIXTURES / rule / "bad"),
            "--select",
            rule,
            "--explain",
            f"{rule}:flow.py:1",
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "no finding matches" in out
    assert "candidate:" in out


def test_cli_explain_malformed_spec_is_a_usage_error(capsys):
    code = cli_main(["lint", str(FIXTURES), "--explain", "not-a-spec"])
    assert code == 2
    assert "RULE:PATH:LINE" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# SARIF output (PR 9)


def _sarif_for(args):
    from io import StringIO
    from unittest import mock

    buffer = StringIO()
    with mock.patch("sys.stdout", buffer):
        cli_main(args)
    return buffer.getvalue()


def test_sarif_output_is_valid_and_complete():
    rule = "nondeterministic-keyed-output"
    text = _sarif_for(
        ["lint", str(FIXTURES / rule / "bad"), "--select", rule,
         "--format", "sarif"]
    )
    log = json.loads(text)
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    assert len(log["runs"]) == 1
    run = log["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-analysis"
    declared = {r["id"] for r in driver["rules"]}
    assert set(rule_names()) <= declared
    assert "syntax-error" in declared
    for declared_rule in driver["rules"]:
        assert declared_rule["shortDescription"]["text"]
        assert declared_rule["defaultConfiguration"]["level"] in (
            "error", "warning", "note",
        )
    assert len(run["results"]) == 1
    result = run["results"][0]
    assert result["ruleId"] == rule
    assert result["ruleId"] in declared
    assert result["level"] == "error"
    assert result["message"]["text"]
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("flow.py")
    assert location["region"]["startLine"] == 29
    assert result["properties"]["chain"]  # the witness chain travels along


def test_sarif_output_is_deterministic():
    rule = "unordered-iteration-leak"
    args = ["lint", str(FIXTURES / rule / "bad"), "--select", rule,
            "--format", "sarif"]
    assert _sarif_for(args) == _sarif_for(args)


def test_sarif_marks_baselined_findings_as_suppressed(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(_BASELINE_VIOLATION, encoding="utf-8")
    baseline_path = tmp_path / "baseline.json"
    cli_main(
        ["lint", str(bad), "--select", "monotonic-deadline",
         "--write-baseline", str(baseline_path)]
    )
    text = _sarif_for(
        ["lint", str(bad), "--select", "monotonic-deadline",
         "--baseline", str(baseline_path), "--format", "sarif"]
    )
    log = json.loads(text)
    results = log["runs"][0]["results"]
    assert len(results) == 1
    assert results[0]["suppressions"] == [
        {"kind": "external", "status": "accepted"}
    ]


# ---------------------------------------------------------------------------
# deterministic --write-baseline (PR 9)


def test_write_baseline_is_deterministic_and_line_free(tmp_path):
    findings = [
        Finding(rule="r-b", path="b.py", line=90, message="later"),
        Finding(rule="r-a", path="a.py", line=50, message="mid"),
        Finding(rule="r-a", path="a.py", line=10, message="mid"),
    ]
    first = tmp_path / "one.json"
    second = tmp_path / "two.json"
    write_baseline(findings, str(first))
    # same findings at different lines / arrival order: identical bytes
    write_baseline(list(reversed(findings)), str(second))
    one, two = first.read_bytes(), second.read_bytes()
    assert one == two
    assert one.endswith(b"\n")
    entries = json.loads(one)["findings"]
    assert [e["rule"] for e in entries] == ["r-a", "r-b"]
    assert "line" not in entries[0]
