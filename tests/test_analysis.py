"""Tests for repro.analysis — the AST invariant linter.

Every rule has a fixture pair under ``tests/analysis_fixtures/<rule>/``:
``bad/`` produces exactly the expected findings (id + line), ``good/``
lints clean.  The suite also pins suppression semantics, ``--select`` /
``--ignore``, both CLI output formats, the baseline/diff workflow, the
cross-module dataflow rules (call graph, lock order, pickle boundary,
protocol liveness), and — the durable regression guard — that the real
``src/repro`` tree lints clean.
"""

import json
import os
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    Rule,
    callgraph,
    check_protocol,
    collect_files,
    extract_protocol,
    lint_paths,
    lint_sources,
    load_baseline,
    register_rule,
    rule_names,
    split_findings,
    write_baseline,
)
from repro.analysis.base import Project, SourceFile, parse_suppressions
from repro.cli import main as cli_main
from repro.errors import ConfigError

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC_TREE = Path(__file__).resolve().parents[1] / "src" / "repro"
EXAMPLES_README = Path(__file__).resolve().parents[1] / "examples" / "README.md"

# rule id -> [(path suffix, line), ...] for every expected bad-finding,
# in Finding.sort_key order
EXPECTED = {
    "monotonic-deadline": [("alias.py", 6), ("deadline.py", 5)],
    "tmp-sibling": [(os.path.join("store", "writer.py"), 6)],
    "seeded-rng": [("ctor.py", 7), ("ctor.py", 11), ("sampler.py", 5)],
    "no-blocking-in-async": [(os.path.join("serve", "loop.py"), 5)],
    "no-swallowed-transition": [(os.path.join("fleet", "dispatch.py"), 5)],
    "cpu-affinity": [("pool.py", 5)],
    "protocol-exhaustive": [("protocol.py", 24)],
    "key-purity": [("config_like.py", 14)],
    "documented-suppression": [("undocumented.py", 5)],
    "transitive-blocking-in-async": [(os.path.join("serve", "poller.py"), 13)],
    "lock-order": [("ledger.py", 13)],
    "pickle-boundary": [("library.py", 22)],
    "protocol-liveness": [("peers.py", 10)],
}


def _project(mapping):
    """Build an in-memory Project from {path: source_text}."""
    return Project(
        files=[SourceFile.parse(path, text=text) for path, text in mapping.items()]
    )


def _lint_snippet(text, path="snippet.py", **kwargs):
    return lint_sources([SourceFile.parse(path, text=text)], **kwargs)


# ---------------------------------------------------------------------------
# fixture pairs


def test_every_rule_has_a_fixture_pair():
    assert sorted(EXPECTED) == rule_names()
    for rule in EXPECTED:
        assert (FIXTURES / rule / "bad").is_dir()
        assert (FIXTURES / rule / "good").is_dir()


def test_every_rule_is_documented():
    """New rules cannot land undocumented: each id must appear in the
    examples/README invariants table and the package docstring table."""
    import repro.analysis as analysis

    readme = EXAMPLES_README.read_text(encoding="utf-8")
    for rule in rule_names():
        assert f"`{rule}`" in readme, (
            f"rule {rule!r} missing from the examples/README invariants table"
        )
        assert rule in analysis.__doc__, (
            f"rule {rule!r} missing from the repro.analysis docstring table"
        )


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_bad_fixture_produces_exactly_the_expected_findings(rule):
    findings = lint_paths([str(FIXTURES / rule / "bad")], select=[rule])
    assert len(findings) == len(EXPECTED[rule]), findings
    for finding, (suffix, line) in zip(findings, EXPECTED[rule]):
        assert finding.rule == rule
        assert finding.path.endswith(suffix)
        assert finding.line == line
        assert finding.severity == "error"
        assert finding.message


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_good_fixture_is_clean(rule):
    assert lint_paths([str(FIXTURES / rule / "good")], select=[rule]) == []


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_good_fixture_is_clean_under_the_full_rule_set(rule):
    assert lint_paths([str(FIXTURES / rule / "good")]) == []


# ---------------------------------------------------------------------------
# CLI: exit codes and both output formats


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_cli_text_format_reports_the_fixture_finding(rule, capsys):
    suffix, line = EXPECTED[rule][0]
    code = cli_main(["lint", str(FIXTURES / rule / "bad"), "--select", rule])
    out = capsys.readouterr().out
    assert code == 1
    assert f"{suffix}:{line}: {rule}:" in out
    assert f"{len(EXPECTED[rule])} finding(s)" in out


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_cli_json_format_reports_the_fixture_finding(rule, capsys):
    suffix, line = EXPECTED[rule][0]
    code = cli_main(
        ["lint", str(FIXTURES / rule / "bad"), "--select", rule, "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["count"] == len(EXPECTED[rule])
    finding = payload["findings"][0]
    assert finding["rule"] == rule
    assert finding["path"].endswith(suffix)
    assert finding["line"] == line


def test_cli_clean_tree_exits_zero(capsys):
    rule = "monotonic-deadline"
    code = cli_main(["lint", str(FIXTURES / rule / "good"), "--select", rule])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out

    code = cli_main(
        ["lint", str(FIXTURES / rule / "good"), "--select", rule, "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["count"] == 0
    assert payload["findings"] == []
    assert payload["files"] == 2


def test_cli_unknown_rule_is_a_usage_error(capsys):
    assert cli_main(["lint", str(FIXTURES), "--select", "nope"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_missing_path_is_a_usage_error(capsys):
    assert cli_main(["lint", str(FIXTURES / "does-not-exist")]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in rule_names():
        assert rule in out


# ---------------------------------------------------------------------------
# suppression semantics

_VIOLATION = "import time\n\ndeadline = time.time() + 5\n"


def test_documented_suppression_silences_the_finding():
    text = _VIOLATION.replace(
        "+ 5", "+ 5  # repro: allow[monotonic-deadline] fixture needs wall clock"
    )
    assert _lint_snippet(text) == []


def test_suppression_on_the_line_above_works():
    text = (
        "import time\n"
        "\n"
        "# repro: allow[monotonic-deadline] fixture needs wall clock\n"
        "deadline = time.time() + 5\n"
    )
    assert _lint_snippet(text) == []


def test_reasonless_suppression_suppresses_nothing():
    text = _VIOLATION.replace("+ 5", "+ 5  # repro: allow[monotonic-deadline]")
    rules = {f.rule for f in _lint_snippet(text)}
    assert rules == {"monotonic-deadline", "documented-suppression"}


def test_suppression_for_a_different_rule_does_not_apply():
    text = _VIOLATION.replace(
        "+ 5", "+ 5  # repro: allow[seeded-rng] wrong rule entirely"
    )
    rules = {f.rule for f in _lint_snippet(text)}
    assert "monotonic-deadline" in rules


def test_unknown_rule_id_in_allow_comment_is_flagged():
    findings = _lint_snippet(
        "x = 1  # repro: allow[not-a-rule] stale after a rename\n",
        select=["documented-suppression"],
    )
    assert len(findings) == 1
    assert "unknown rule" in findings[0].message


def test_allow_pattern_inside_a_string_literal_is_not_a_suppression():
    text = 'HELP = "write # repro: allow[rule-id] <reason> to suppress"\n'
    assert parse_suppressions(text) == {}
    assert _lint_snippet(text, select=["documented-suppression"]) == []


def test_one_comment_can_allow_multiple_rules():
    text = (
        "import time\n"
        "\n"
        "# repro: allow[monotonic-deadline, seeded-rng] both intended here\n"
        "deadline = time.time() + 5\n"
    )
    assert _lint_snippet(text) == []


# ---------------------------------------------------------------------------
# select / ignore

_TWO_VIOLATIONS = (
    "import os\n"
    "import time\n"
    "\n"
    "\n"
    "def jobs(timeout_s):\n"
    "    deadline = time.time() + timeout_s\n"
    "    return os.cpu_count(), deadline\n"
)


def test_select_narrows_to_the_named_rules():
    findings = _lint_snippet(_TWO_VIOLATIONS, select=["monotonic-deadline"])
    assert {f.rule for f in findings} == {"monotonic-deadline"}


def test_ignore_drops_the_named_rules():
    findings = _lint_snippet(_TWO_VIOLATIONS, ignore=["monotonic-deadline"])
    assert {f.rule for f in findings} == {"cpu-affinity"}


def test_unknown_rule_in_select_or_ignore_raises():
    with pytest.raises(ConfigError):
        _lint_snippet(_TWO_VIOLATIONS, select=["bogus"])
    with pytest.raises(ConfigError):
        _lint_snippet(_TWO_VIOLATIONS, ignore=["bogus"])


def test_cli_comma_separated_and_repeated_flags(capsys):
    bad = str(FIXTURES / "cpu-affinity" / "bad")
    code = cli_main(
        ["lint", bad, "--select", "cpu-affinity,seeded-rng", "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["count"] == 1
    code = cli_main(["lint", bad, "--ignore", "cpu-affinity"])
    capsys.readouterr()
    assert code == 0


# ---------------------------------------------------------------------------
# engine behaviour


def test_syntax_error_becomes_a_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def nope(:\n", encoding="utf-8")
    findings = lint_paths([str(path)])
    assert len(findings) == 1
    assert findings[0].rule == "syntax-error"
    assert "syntax error" in findings[0].message


def test_collect_files_expands_dedups_and_sorts(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
    sub = tmp_path / "pkg"
    sub.mkdir()
    (sub / "c.py").write_text("x = 1\n", encoding="utf-8")
    files = collect_files([str(tmp_path), str(tmp_path / "a.py")])
    assert [Path(f).name for f in files] == ["a.py", "b.py", "c.py"]


def test_collect_files_missing_path_raises():
    with pytest.raises(ConfigError):
        collect_files(["/no/such/path/anywhere"])


def test_findings_are_sorted_and_serializable():
    findings = _lint_snippet(_TWO_VIOLATIONS)
    assert findings == sorted(findings, key=Finding.sort_key)
    for finding in findings:
        round_tripped = json.loads(json.dumps(finding.to_dict()))
        assert round_tripped["rule"] == finding.rule
        assert finding.format().startswith(f"{finding.path}:{finding.line}:")


def test_registry_rejects_duplicates_and_unknowns():
    with pytest.raises(ConfigError):

        @register_rule("monotonic-deadline")
        class Duplicate(Rule):
            pass

    from repro.analysis import get_rule_class

    with pytest.raises(ConfigError):
        get_rule_class("never-registered")
    assert rule_names() == sorted(rule_names())


# ---------------------------------------------------------------------------
# rule-specific edges beyond the fixture pairs


def test_monotonic_deadline_catches_comparisons():
    text = (
        "import time\n"
        "\n"
        "\n"
        "def expired(deadline):\n"
        "    return time.time() >= deadline\n"
    )
    findings = _lint_snippet(text, select=["monotonic-deadline"])
    assert [f.line for f in findings] == [5]


def test_monotonic_deadline_respects_import_aliases():
    text = "from time import time\n\ndeadline = time() + 1\n"
    findings = _lint_snippet(text, select=["monotonic-deadline"])
    assert [f.line for f in findings] == [3]


def test_tmp_sibling_flags_tempfile_apis(tmp_path):
    store = tmp_path / "store"
    store.mkdir()
    path = store / "writer.py"
    path.write_text(
        "import tempfile\n\nhandle = tempfile.NamedTemporaryFile()\n",
        encoding="utf-8",
    )
    findings = lint_paths([str(path)], select=["tmp-sibling"])
    assert [f.line for f in findings] == [3]


def test_tmp_sibling_only_applies_under_store(tmp_path):
    path = tmp_path / "elsewhere.py"
    path.write_text('tmp = "out.tmp"\n', encoding="utf-8")
    assert lint_paths([str(path)], select=["tmp-sibling"]) == []


def test_seeded_rng_catches_numpy_global_draws():
    text = "import numpy as np\n\nnoise = np.random.rand(4)\n"
    findings = _lint_snippet(text, select=["seeded-rng"])
    assert [f.line for f in findings] == [3]


def test_no_blocking_in_async_ignores_awaited_results():
    text = (
        "async def run(service, job_id):\n"
        "    return await service.result(job_id)\n"
    )
    assert _lint_snippet(text, select=["no-blocking-in-async"]) == []


def test_key_purity_flags_unknown_fields():
    text = (
        "class Config:\n"
        "    model: str\n"
        "\n"
        "    def cache_key(self):\n"
        "        return (self.model, self.vanished)\n"
        "\n"
        "    def result_key(self):\n"
        "        return self.cache_key()\n"
    )
    findings = _lint_snippet(text, select=["key-purity"])
    assert len(findings) == 1
    assert "vanished" in findings[0].message
    assert findings[0].line == 5


# ---------------------------------------------------------------------------
# the cross-module call graph


def test_callgraph_resolves_cross_module_calls():
    project = _project(
        {
            "pkg/util.py": "def helper():\n    return 1\n",
            "pkg/main.py": (
                "from pkg.util import helper\n"
                "\n"
                "\n"
                "def run():\n"
                "    return helper()\n"
            ),
        }
    )
    graph = callgraph(project)
    edges = graph.callees("pkg.main::run")
    assert [e.callee for e in edges] == ["pkg.util::helper"]
    assert not edges[0].offthread


def test_callgraph_marks_executor_submissions_offthread():
    project = _project(
        {
            "work.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "\n"
                "\n"
                "def task(x):\n"
                "    return x\n"
                "\n"
                "\n"
                "def run(xs):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return [pool.submit(task, x) for x in xs]\n"
            ),
        }
    )
    graph = callgraph(project)
    edges = graph.callees("work::run")
    assert [(e.callee, e.offthread) for e in edges] == [("work::task", True)]


def test_callgraph_resolves_methods_on_annotated_receivers():
    project = _project(
        {
            "svc.py": (
                "class Store:\n"
                "    def get(self, key):\n"
                "        return key\n"
                "\n"
                "\n"
                "def read(store: Store, key):\n"
                "    return store.get(key)\n"
            ),
        }
    )
    graph = callgraph(project)
    assert [e.callee for e in graph.callees("svc::read")] == ["svc::Store.get"]


def test_callgraph_leaves_uninferable_receivers_unresolved():
    """`obj.get()` with no type evidence must resolve to nothing — by-name
    dispatch would flood the dataflow rules with false edges."""
    project = _project(
        {
            "svc.py": (
                "class Store:\n"
                "    def get(self, key):\n"
                "        return key\n"
                "\n"
                "\n"
                "def read(store, key):\n"
                "    return store.get(key)\n"
            ),
        }
    )
    graph = callgraph(project)
    assert graph.callees("svc::read") == []


def test_callgraph_is_cached_per_project():
    project = _project({"m.py": "def f():\n    pass\n"})
    assert callgraph(project) is callgraph(project)


# ---------------------------------------------------------------------------
# cross-module rule edges beyond the fixture pairs


def test_transitive_blocking_found_two_frames_deep():
    project = _project(
        {
            "deep.py": (
                "import time\n"
                "\n"
                "\n"
                "def inner():\n"
                "    time.sleep(1)\n"
                "\n"
                "\n"
                "def outer():\n"
                "    inner()\n"
                "\n"
                "\n"
                "async def handler():\n"
                "    outer()\n"
            ),
        }
    )
    findings = lint_sources(project.files, select=["transitive-blocking-in-async"])
    assert len(findings) == 1
    assert findings[0].line == 13
    assert "outer() -> inner()" in findings[0].message


def test_transitive_blocking_skips_run_in_executor_chains():
    project = _project(
        {
            "offload.py": (
                "import asyncio\n"
                "import time\n"
                "\n"
                "\n"
                "def slow():\n"
                "    time.sleep(1)\n"
                "\n"
                "\n"
                "async def handler():\n"
                "    loop = asyncio.get_running_loop()\n"
                "    await loop.run_in_executor(None, slow)\n"
            ),
        }
    )
    assert lint_sources(project.files, select=["transitive-blocking-in-async"]) == []


def test_lock_order_flags_await_under_threading_lock():
    project = _project(
        {
            "mixed.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Broker:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    async def publish(self, send):\n"
                "        with self._lock:\n"
                "            await send()\n"
            ),
        }
    )
    findings = lint_sources(project.files, select=["lock-order"])
    assert len(findings) == 1
    assert findings[0].line == 10
    assert "await while holding threading lock" in findings[0].message


def test_lock_order_allows_await_under_asyncio_lock():
    project = _project(
        {
            "fine.py": (
                "import asyncio\n"
                "\n"
                "\n"
                "class Broker:\n"
                "    def __init__(self):\n"
                "        self._lock = asyncio.Lock()\n"
                "\n"
                "    async def publish(self, send):\n"
                "        async with self._lock:\n"
                "            await send()\n"
            ),
        }
    )
    assert lint_sources(project.files, select=["lock-order"]) == []


def test_lock_order_follows_calls_while_holding_a_lock():
    """A cycle split across two methods connected by a call is still a
    cycle: record() holds A and calls a helper that takes B; flush()
    takes them in the B -> A order."""
    project = _project(
        {
            "split.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Buffered:\n"
                "    def __init__(self):\n"
                "        self._a = threading.Lock()\n"
                "        self._b = threading.Lock()\n"
                "\n"
                "    def _bump(self):\n"
                "        with self._b:\n"
                "            pass\n"
                "\n"
                "    def record(self):\n"
                "        with self._a:\n"
                "            self._bump()\n"
                "\n"
                "    def flush(self):\n"
                "        with self._b:\n"
                "            with self._a:\n"
                "                pass\n"
            ),
        }
    )
    findings = lint_sources(project.files, select=["lock-order"])
    assert len(findings) == 1
    assert "lock-order cycle" in findings[0].message
    assert "Buffered._a" in findings[0].message
    assert "Buffered._b" in findings[0].message


def test_lock_order_flags_nonreentrant_reentry():
    project = _project(
        {
            "reenter.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Counter:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def bump(self):\n"
                "        with self._lock:\n"
                "            self.read()\n"
                "\n"
                "    def read(self):\n"
                "        with self._lock:\n"
                "            return 0\n"
            ),
        }
    )
    findings = lint_sources(project.files, select=["lock-order"])
    assert len(findings) == 1
    assert "re-acquired while already held" in findings[0].message
    assert findings[0].line == 10


def test_pickle_boundary_honours_custom_reduce():
    """The good fixture's CellLibrary carries a Lock but defines
    __reduce__ — exactly the ArtifactStore pattern — so it may cross."""
    findings = lint_paths(
        [str(FIXTURES / "pickle-boundary" / "good")], select=["pickle-boundary"]
    )
    assert findings == []


def test_pickle_boundary_ignores_thread_pools():
    project = _project(
        {
            "threads.py": (
                "import threading\n"
                "from concurrent.futures import ThreadPoolExecutor\n"
                "\n"
                "\n"
                "class Shared:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "\n"
                "def run():\n"
                "    shared = Shared()\n"
                "    with ThreadPoolExecutor() as pool:\n"
                "        return pool.submit(id, shared)\n"
            ),
        }
    )
    assert lint_sources(project.files, select=["pickle-boundary"]) == []


def test_pickle_boundary_flags_tainted_bound_methods():
    project = _project(
        {
            "bound.py": (
                "import threading\n"
                "from concurrent.futures import ProcessPoolExecutor\n"
                "\n"
                "\n"
                "class Worker:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def step(self, x):\n"
                "        return x\n"
                "\n"
                "\n"
                "def run(w: Worker):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return pool.submit(w.step, 1)\n"
            ),
        }
    )
    findings = lint_sources(project.files, select=["pickle-boundary"])
    assert len(findings) == 1
    assert "bound method" in findings[0].message


# ---------------------------------------------------------------------------
# protocol-liveness: the model and the seeded-defect drill


def _fleet_project():
    fleet = SRC_TREE / "fleet"
    return Project(
        files=[
            SourceFile.parse(str(path)) for path in sorted(fleet.glob("*.py"))
        ]
    )


def test_fleet_protocol_model_extraction():
    model = extract_protocol(_fleet_project())
    assert len(model.messages) == 12
    assert set(model.roles) == {"Coordinator", "Worker"}
    # every coordinator send has a worker handler and vice versa
    assert check_protocol(model) == []
    coordinator, worker = model.roles["Coordinator"], model.roles["Worker"]
    assert set(coordinator.sends) <= set(worker.handles)
    assert set(worker.sends) <= set(coordinator.handles)


def test_protocol_liveness_catches_a_seeded_handler_drop():
    """Drop one message type from the worker's handler table and the
    checker must report the coordinator's now-unheard send."""
    model = extract_protocol(_fleet_project())
    assert "Quarantine" in model.roles["Worker"].handles
    del model.roles["Worker"].handles["Quarantine"]
    problems = check_protocol(model)
    assert len(problems) == 1
    _, _, message = problems[0]
    assert "Coordinator sends Quarantine" in message
    assert "no peer role" in message


def test_protocol_liveness_catches_a_seeded_stranded_state():
    """Erase the exit evidence for a non-terminal state and the checker
    must flag it as stranded."""
    model = extract_protocol(_fleet_project())
    machine = next(m for m in model.machines if m.name == "FLEET_JOB_STATES")
    machine.exited.discard("leased")
    problems = check_protocol(model)
    assert any("state 'leased'" in message for _, _, message in problems)


def test_protocol_liveness_state_tuples_from_snippets():
    project = _project(
        {
            "machine.py": (
                'TASK_STATES = ("idle", "busy", "stuck")\n'
                "\n"
                "\n"
                "class Task:\n"
                "    def start(self):\n"
                '        if self.state == "idle":\n'
                '            self.state = "busy"\n'
                "\n"
                "    def reset(self):\n"
                '        if self.state == "busy":\n'
                '            self.state = "idle"\n'
                "\n"
                "    def jam(self):\n"
                '        if self.state == "busy":\n'
                '            self.state = "stuck"\n'
            ),
        }
    )
    findings = lint_sources(project.files, select=["protocol-liveness"])
    assert len(findings) == 1
    assert "state 'stuck'" in findings[0].message
    assert "never" not in findings[0].message  # it IS entered; it cannot leave


# ---------------------------------------------------------------------------
# baseline / diff workflow


_BASELINE_VIOLATION = "import time\n\ndeadline = time.time() + 5\n"


def test_baseline_round_trip_and_split(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(_BASELINE_VIOLATION, encoding="utf-8")
    findings = lint_paths([str(bad)], select=["monotonic-deadline"])
    assert len(findings) == 1

    baseline_path = tmp_path / "baseline.json"
    written = write_baseline(findings, str(baseline_path))
    assert len(written.entries) == 1
    assert written.undocumented() == written.entries  # reasons start empty

    loaded = load_baseline(str(baseline_path))
    new, old = split_findings(findings, loaded)
    assert new == [] and old == findings

    # baseline matching is line-insensitive: shift the finding down
    bad.write_text("import time\n\n\n" + _BASELINE_VIOLATION.split("\n", 2)[2],
                   encoding="utf-8")
    moved = lint_paths([str(bad)], select=["monotonic-deadline"])
    assert moved[0].line != findings[0].line
    new, old = split_findings(moved, loaded)
    assert new == [] and old == moved


def test_baseline_load_rejects_garbage(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(ConfigError):
        load_baseline(str(missing))
    bad = tmp_path / "bad.json"
    bad.write_text("not json", encoding="utf-8")
    with pytest.raises(ConfigError):
        load_baseline(str(bad))
    bad.write_text('{"version": 99, "findings": []}', encoding="utf-8")
    with pytest.raises(ConfigError):
        load_baseline(str(bad))


def test_cli_baseline_gates_only_new_findings(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text(_BASELINE_VIOLATION, encoding="utf-8")
    baseline_path = tmp_path / "baseline.json"

    code = cli_main(
        ["lint", str(bad), "--select", "monotonic-deadline",
         "--write-baseline", str(baseline_path)]
    )
    assert code == 0
    assert "1 baseline entry" in capsys.readouterr().out

    # baselined finding: exit 0, listed with the [baselined] marker
    code = cli_main(
        ["lint", str(bad), "--select", "monotonic-deadline",
         "--baseline", str(baseline_path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "[baselined]" in out
    assert "no new findings" in out

    # --diff hides the baselined listing entirely
    code = cli_main(
        ["lint", str(bad), "--select", "monotonic-deadline",
         "--baseline", str(baseline_path), "--diff"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "[baselined]" not in out

    # a new violation (distinct message, so outside the baseline key)
    # still fails the run
    bad.write_text(
        _BASELINE_VIOLATION
        + "\n\ndef wait(t):\n    started = time.time()\n    return started + t\n",
        encoding="utf-8",
    )
    code = cli_main(
        ["lint", str(bad), "--select", "monotonic-deadline",
         "--baseline", str(baseline_path), "--diff", "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["new_count"] == 1
    assert payload["baselined_count"] == 1
    assert "baselined" not in payload  # --diff drops the accepted listing


def test_repo_baseline_is_empty_and_documented():
    """The committed baseline stays honest: src is clean, so it must be
    empty, and any future entry must carry a reason."""
    committed = Path(__file__).resolve().parents[1] / ".lint-baseline.json"
    baseline = load_baseline(str(committed))
    assert baseline.entries == []
    assert baseline.undocumented() == []


# ---------------------------------------------------------------------------
# the regression guards for this PR's fixes


def test_real_source_tree_lints_clean():
    findings = lint_paths([str(SRC_TREE)])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_default_jobs_respects_scheduling_affinity(monkeypatch):
    import repro.core.batch as batch

    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(9)))

    def boom():  # pragma: no cover - must never run
        raise AssertionError("default_jobs must not consult os.cpu_count")

    monkeypatch.setattr(os, "cpu_count", boom)
    assert batch.default_jobs() == 8


def test_worker_session_has_no_blocking_calls():
    worker = SRC_TREE / "fleet" / "worker.py"
    assert lint_paths([str(worker)], select=["no-blocking-in-async"]) == []
