"""Tests for repro.analysis — the AST invariant linter.

Every rule has a fixture pair under ``tests/analysis_fixtures/<rule>/``:
``bad/`` produces exactly one expected finding (id + line), ``good/``
lints clean.  The suite also pins suppression semantics, ``--select`` /
``--ignore``, both CLI output formats, and — the durable regression
guard — that the real ``src/repro`` tree lints clean.
"""

import json
import os
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    Rule,
    collect_files,
    lint_paths,
    lint_sources,
    register_rule,
    rule_names,
)
from repro.analysis.base import SourceFile, parse_suppressions
from repro.cli import main as cli_main
from repro.errors import ConfigError

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC_TREE = Path(__file__).resolve().parents[1] / "src" / "repro"

# rule id -> (path suffix of the expected finding, expected line)
EXPECTED = {
    "monotonic-deadline": ("deadline.py", 5),
    "tmp-sibling": (os.path.join("store", "writer.py"), 6),
    "seeded-rng": ("sampler.py", 5),
    "no-blocking-in-async": (os.path.join("serve", "loop.py"), 5),
    "no-swallowed-transition": (os.path.join("fleet", "dispatch.py"), 5),
    "cpu-affinity": ("pool.py", 5),
    "protocol-exhaustive": ("protocol.py", 24),
    "key-purity": ("config_like.py", 14),
    "documented-suppression": ("undocumented.py", 5),
}


def _lint_snippet(text, path="snippet.py", **kwargs):
    return lint_sources([SourceFile.parse(path, text=text)], **kwargs)


# ---------------------------------------------------------------------------
# fixture pairs


def test_every_rule_has_a_fixture_pair():
    assert sorted(EXPECTED) == rule_names()
    for rule in EXPECTED:
        assert (FIXTURES / rule / "bad").is_dir()
        assert (FIXTURES / rule / "good").is_dir()


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_bad_fixture_produces_exactly_the_expected_finding(rule):
    suffix, line = EXPECTED[rule]
    findings = lint_paths([str(FIXTURES / rule / "bad")], select=[rule])
    assert len(findings) == 1, findings
    (finding,) = findings
    assert finding.rule == rule
    assert finding.path.endswith(suffix)
    assert finding.line == line
    assert finding.severity == "error"
    assert finding.message


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_good_fixture_is_clean(rule):
    assert lint_paths([str(FIXTURES / rule / "good")], select=[rule]) == []


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_good_fixture_is_clean_under_the_full_rule_set(rule):
    assert lint_paths([str(FIXTURES / rule / "good")]) == []


# ---------------------------------------------------------------------------
# CLI: exit codes and both output formats


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_cli_text_format_reports_the_fixture_finding(rule, capsys):
    suffix, line = EXPECTED[rule]
    code = cli_main(["lint", str(FIXTURES / rule / "bad"), "--select", rule])
    out = capsys.readouterr().out
    assert code == 1
    assert f"{suffix}:{line}: {rule}:" in out
    assert "1 finding(s)" in out


@pytest.mark.parametrize("rule", sorted(EXPECTED))
def test_cli_json_format_reports_the_fixture_finding(rule, capsys):
    suffix, line = EXPECTED[rule]
    code = cli_main(
        ["lint", str(FIXTURES / rule / "bad"), "--select", rule, "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["count"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == rule
    assert finding["path"].endswith(suffix)
    assert finding["line"] == line


def test_cli_clean_tree_exits_zero(capsys):
    rule = "monotonic-deadline"
    code = cli_main(["lint", str(FIXTURES / rule / "good"), "--select", rule])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out

    code = cli_main(
        ["lint", str(FIXTURES / rule / "good"), "--select", rule, "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["count"] == 0
    assert payload["findings"] == []
    assert payload["files"] == 1


def test_cli_unknown_rule_is_a_usage_error(capsys):
    assert cli_main(["lint", str(FIXTURES), "--select", "nope"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_missing_path_is_a_usage_error(capsys):
    assert cli_main(["lint", str(FIXTURES / "does-not-exist")]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in rule_names():
        assert rule in out


# ---------------------------------------------------------------------------
# suppression semantics

_VIOLATION = "import time\n\ndeadline = time.time() + 5\n"


def test_documented_suppression_silences_the_finding():
    text = _VIOLATION.replace(
        "+ 5", "+ 5  # repro: allow[monotonic-deadline] fixture needs wall clock"
    )
    assert _lint_snippet(text) == []


def test_suppression_on_the_line_above_works():
    text = (
        "import time\n"
        "\n"
        "# repro: allow[monotonic-deadline] fixture needs wall clock\n"
        "deadline = time.time() + 5\n"
    )
    assert _lint_snippet(text) == []


def test_reasonless_suppression_suppresses_nothing():
    text = _VIOLATION.replace("+ 5", "+ 5  # repro: allow[monotonic-deadline]")
    rules = {f.rule for f in _lint_snippet(text)}
    assert rules == {"monotonic-deadline", "documented-suppression"}


def test_suppression_for_a_different_rule_does_not_apply():
    text = _VIOLATION.replace(
        "+ 5", "+ 5  # repro: allow[seeded-rng] wrong rule entirely"
    )
    rules = {f.rule for f in _lint_snippet(text)}
    assert "monotonic-deadline" in rules


def test_unknown_rule_id_in_allow_comment_is_flagged():
    findings = _lint_snippet(
        "x = 1  # repro: allow[not-a-rule] stale after a rename\n",
        select=["documented-suppression"],
    )
    assert len(findings) == 1
    assert "unknown rule" in findings[0].message


def test_allow_pattern_inside_a_string_literal_is_not_a_suppression():
    text = 'HELP = "write # repro: allow[rule-id] <reason> to suppress"\n'
    assert parse_suppressions(text) == {}
    assert _lint_snippet(text, select=["documented-suppression"]) == []


def test_one_comment_can_allow_multiple_rules():
    text = (
        "import time\n"
        "\n"
        "# repro: allow[monotonic-deadline, seeded-rng] both intended here\n"
        "deadline = time.time() + 5\n"
    )
    assert _lint_snippet(text) == []


# ---------------------------------------------------------------------------
# select / ignore

_TWO_VIOLATIONS = (
    "import os\n"
    "import time\n"
    "\n"
    "\n"
    "def jobs(timeout_s):\n"
    "    deadline = time.time() + timeout_s\n"
    "    return os.cpu_count(), deadline\n"
)


def test_select_narrows_to_the_named_rules():
    findings = _lint_snippet(_TWO_VIOLATIONS, select=["monotonic-deadline"])
    assert {f.rule for f in findings} == {"monotonic-deadline"}


def test_ignore_drops_the_named_rules():
    findings = _lint_snippet(_TWO_VIOLATIONS, ignore=["monotonic-deadline"])
    assert {f.rule for f in findings} == {"cpu-affinity"}


def test_unknown_rule_in_select_or_ignore_raises():
    with pytest.raises(ConfigError):
        _lint_snippet(_TWO_VIOLATIONS, select=["bogus"])
    with pytest.raises(ConfigError):
        _lint_snippet(_TWO_VIOLATIONS, ignore=["bogus"])


def test_cli_comma_separated_and_repeated_flags(capsys):
    bad = str(FIXTURES / "cpu-affinity" / "bad")
    code = cli_main(
        ["lint", bad, "--select", "cpu-affinity,seeded-rng", "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["count"] == 1
    code = cli_main(["lint", bad, "--ignore", "cpu-affinity"])
    capsys.readouterr()
    assert code == 0


# ---------------------------------------------------------------------------
# engine behaviour


def test_syntax_error_becomes_a_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def nope(:\n", encoding="utf-8")
    findings = lint_paths([str(path)])
    assert len(findings) == 1
    assert findings[0].rule == "syntax-error"
    assert "syntax error" in findings[0].message


def test_collect_files_expands_dedups_and_sorts(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
    sub = tmp_path / "pkg"
    sub.mkdir()
    (sub / "c.py").write_text("x = 1\n", encoding="utf-8")
    files = collect_files([str(tmp_path), str(tmp_path / "a.py")])
    assert [Path(f).name for f in files] == ["a.py", "b.py", "c.py"]


def test_collect_files_missing_path_raises():
    with pytest.raises(ConfigError):
        collect_files(["/no/such/path/anywhere"])


def test_findings_are_sorted_and_serializable():
    findings = _lint_snippet(_TWO_VIOLATIONS)
    assert findings == sorted(findings, key=Finding.sort_key)
    for finding in findings:
        round_tripped = json.loads(json.dumps(finding.to_dict()))
        assert round_tripped["rule"] == finding.rule
        assert finding.format().startswith(f"{finding.path}:{finding.line}:")


def test_registry_rejects_duplicates_and_unknowns():
    with pytest.raises(ConfigError):

        @register_rule("monotonic-deadline")
        class Duplicate(Rule):
            pass

    from repro.analysis import get_rule_class

    with pytest.raises(ConfigError):
        get_rule_class("never-registered")
    assert rule_names() == sorted(rule_names())


# ---------------------------------------------------------------------------
# rule-specific edges beyond the fixture pairs


def test_monotonic_deadline_catches_comparisons():
    text = (
        "import time\n"
        "\n"
        "\n"
        "def expired(deadline):\n"
        "    return time.time() >= deadline\n"
    )
    findings = _lint_snippet(text, select=["monotonic-deadline"])
    assert [f.line for f in findings] == [5]


def test_monotonic_deadline_respects_import_aliases():
    text = "from time import time\n\ndeadline = time() + 1\n"
    findings = _lint_snippet(text, select=["monotonic-deadline"])
    assert [f.line for f in findings] == [3]


def test_tmp_sibling_flags_tempfile_apis(tmp_path):
    store = tmp_path / "store"
    store.mkdir()
    path = store / "writer.py"
    path.write_text(
        "import tempfile\n\nhandle = tempfile.NamedTemporaryFile()\n",
        encoding="utf-8",
    )
    findings = lint_paths([str(path)], select=["tmp-sibling"])
    assert [f.line for f in findings] == [3]


def test_tmp_sibling_only_applies_under_store(tmp_path):
    path = tmp_path / "elsewhere.py"
    path.write_text('tmp = "out.tmp"\n', encoding="utf-8")
    assert lint_paths([str(path)], select=["tmp-sibling"]) == []


def test_seeded_rng_catches_numpy_global_draws():
    text = "import numpy as np\n\nnoise = np.random.rand(4)\n"
    findings = _lint_snippet(text, select=["seeded-rng"])
    assert [f.line for f in findings] == [3]


def test_no_blocking_in_async_ignores_awaited_results():
    text = (
        "async def run(service, job_id):\n"
        "    return await service.result(job_id)\n"
    )
    assert _lint_snippet(text, select=["no-blocking-in-async"]) == []


def test_key_purity_flags_unknown_fields():
    text = (
        "class Config:\n"
        "    model: str\n"
        "\n"
        "    def cache_key(self):\n"
        "        return (self.model, self.vanished)\n"
        "\n"
        "    def result_key(self):\n"
        "        return self.cache_key()\n"
    )
    findings = _lint_snippet(text, select=["key-purity"])
    assert len(findings) == 1
    assert "vanished" in findings[0].message
    assert findings[0].line == 5


# ---------------------------------------------------------------------------
# the regression guards for this PR's fixes


def test_real_source_tree_lints_clean():
    findings = lint_paths([str(SRC_TREE)])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_default_jobs_respects_scheduling_affinity(monkeypatch):
    import repro.core.batch as batch

    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(9)))

    def boom():  # pragma: no cover - must never run
        raise AssertionError("default_jobs must not consult os.cpu_count")

    monkeypatch.setattr(os, "cpu_count", boom)
    assert batch.default_jobs() == 8


def test_worker_session_has_no_blocking_calls():
    worker = SRC_TREE / "fleet" / "worker.py"
    assert lint_paths([str(worker)], select=["no-blocking-in-async"]) == []
