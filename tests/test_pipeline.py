"""Tests for the staged Pipeline: ordering, skipping, overriding, caching,
and parity with the legacy run_flow wrapper."""

import pytest

from repro.bench.generators import GeneratorConfig, random_control_network
from repro.core.config import FlowConfig
from repro.core.flow import run_flow
from repro.core.pipeline import (
    Pipeline,
    PipelineCache,
    STAGE_NAMES,
    StageResult,
)
from repro.errors import ConfigError
from repro.phase import Phase, PhaseAssignment


@pytest.fixture(scope="module")
def tiny():
    cfg = GeneratorConfig(n_inputs=10, n_outputs=4, n_gates=28, seed=3)
    return random_control_network("tiny", cfg)


@pytest.fixture(scope="module")
def fast_config():
    return FlowConfig(n_vectors=512)


class TestStageOrdering:
    def test_canonical_order(self):
        assert STAGE_NAMES == (
            "prepare",
            "sequential",
            "evaluator",
            "optimize_ma",
            "optimize_mp",
            "transform_map",
            "resize",
            "measure",
        )

    def test_run_produces_every_stage_in_order(self, tiny, fast_config):
        result = Pipeline(fast_config).run(tiny)
        assert result.stage_names == list(STAGE_NAMES)
        assert all(isinstance(s, StageResult) for s in result.stages)

    def test_untimed_auto_skips_resize(self, tiny, fast_config):
        result = Pipeline(fast_config).run(tiny)
        assert result.stage("resize").skipped
        assert not result.stage("measure").skipped
        assert result.flow.ma.resize is None

    def test_timed_runs_resize(self, tiny, fast_config):
        result = Pipeline(fast_config.replace(timed=True)).run(tiny)
        assert not result.stage("resize").skipped
        assert result.flow.ma.resize is not None

    def test_stage_outputs_inspectable(self, tiny, fast_config):
        result = Pipeline(fast_config).run(tiny)
        assert result.stage("prepare").output is result.context.aoi
        assert result.stage("evaluator").output is result.context.evaluator
        assert result.stage("measure").output is result.flow
        assert result.total_runtime_s >= 0.0

    def test_unknown_stage_accessor(self, tiny, fast_config):
        result = Pipeline(fast_config).run(tiny)
        with pytest.raises(KeyError):
            result.stage("route")


class TestSkip:
    def test_skip_optimize_mp_copies_ma(self, tiny, fast_config):
        result = Pipeline(fast_config, skip=("optimize_mp",)).run(tiny)
        assert result.stage("optimize_mp").skipped
        flow = result.flow
        assert dict(flow.mp.assignment) == dict(flow.ma.assignment)
        assert flow.mp.size == flow.ma.size

    def test_skip_optimize_ma_uses_all_positive(self, tiny, fast_config):
        result = Pipeline(fast_config, skip=("optimize_ma", "optimize_mp")).run(tiny)
        assignment = result.flow.ma.assignment
        assert all(ph is Phase.POSITIVE for ph in assignment.values())

    def test_skip_measure_yields_no_flow(self, tiny, fast_config):
        result = Pipeline(fast_config, skip=("measure",)).run(tiny)
        assert result.flow is None
        assert result.context.builds  # earlier stages still ran

    def test_unknown_skip_name(self):
        with pytest.raises(ConfigError, match="unknown stage"):
            Pipeline(skip=("optimise_mp",))

    def test_structural_stage_not_skippable(self):
        with pytest.raises(ConfigError, match="cannot be skipped"):
            Pipeline(skip=("prepare",))


class TestOverride:
    def test_override_optimize_mp(self, tiny, fast_config):
        from types import SimpleNamespace

        def all_negative(ctx):
            forced = PhaseAssignment.all_negative(ctx.aoi.output_names())
            return SimpleNamespace(
                assignment=forced, power=ctx.evaluator.power(forced)
            )

        result = Pipeline(fast_config, overrides={"optimize_mp": all_negative}).run(tiny)
        assert all(
            ph is Phase.NEGATIVE for ph in result.flow.mp.assignment.values()
        )

    def test_override_unknown_stage(self):
        with pytest.raises(ConfigError, match="unknown stage"):
            Pipeline(overrides={"floorplan": lambda ctx: None})

    def test_override_not_callable(self):
        with pytest.raises(ConfigError, match="not callable"):
            Pipeline(overrides={"measure": 42})


class TestCache:
    def test_shared_artefacts_cached_across_variants(self, tiny, fast_config):
        cache = PipelineCache()
        pipe = Pipeline(cache=cache)
        first = pipe.run(tiny, fast_config)
        # same circuit, downstream-only change (timed flow): prepare and
        # evaluator come from the cache
        second = pipe.run(tiny, fast_config.replace(timed=True))
        assert not first.stage("prepare").cached
        assert second.stage("prepare").cached
        assert second.stage("evaluator").cached
        assert second.context.evaluator is first.context.evaluator
        assert cache.hits >= 2

    def test_upstream_change_misses(self, tiny, fast_config):
        cache = PipelineCache()
        pipe = Pipeline(cache=cache)
        pipe.run(tiny, fast_config)
        rerun = pipe.run(tiny, fast_config.replace(seed=99))
        assert rerun.stage("prepare").cached  # seed doesn't shape the AOI
        assert not rerun.stage("evaluator").cached

    def test_different_network_misses(self, tiny, fast_config):
        cache = PipelineCache()
        pipe = Pipeline(cache=cache)
        pipe.run(tiny, fast_config)
        other = random_control_network(
            "other", GeneratorConfig(n_inputs=8, n_outputs=3, n_gates=20, seed=5)
        )
        rerun = pipe.run(other, fast_config)
        assert not rerun.stage("prepare").cached

    def test_skip_sequential_does_not_poison_cache(self, tiny, fast_config):
        # a pipeline that skipped `sequential` builds its evaluator from
        # different input probabilities — it must not share a cache slot
        # with a pipeline that ran the stage
        cache = PipelineCache()
        skipping = Pipeline(
            fast_config.replace(input_probability=0.3),
            skip=("sequential",),
            cache=cache,
        )
        full = Pipeline(fast_config.replace(input_probability=0.3), cache=cache)
        first = skipping.run(tiny)
        second = full.run(tiny)
        assert not second.stage("evaluator").cached
        assert second.context.evaluator is not first.context.evaluator

    def test_overridden_prepare_not_cached_as_evaluator_input(self, tiny, fast_config):
        from repro.network.ops import cleanup, to_aoi

        cache = PipelineCache()
        overridden = Pipeline(
            fast_config,
            overrides={"prepare": lambda ctx: cleanup(to_aoi(ctx.network))},
            cache=cache,
        )
        overridden.run(tiny)
        plain = Pipeline(fast_config, cache=cache).run(tiny)
        assert not plain.stage("evaluator").cached

    def test_cached_run_measures_identically(self, tiny, fast_config):
        plain = Pipeline().run(tiny, fast_config)
        cache = PipelineCache()
        pipe = Pipeline(cache=cache)
        pipe.run(tiny, fast_config)
        cached = pipe.run(tiny, fast_config)
        assert cached.flow.row() == plain.flow.row()


class TestParity:
    def test_pipeline_matches_run_flow(self, tiny):
        legacy = run_flow(tiny, n_vectors=512, seed=0)
        staged = Pipeline(FlowConfig(n_vectors=512, seed=0)).run(tiny).flow
        assert staged.row() == legacy.row()
        assert dict(staged.ma.assignment) == dict(legacy.ma.assignment)
        assert dict(staged.mp.assignment) == dict(legacy.mp.assignment)
        assert staged.ma.estimated_power == legacy.ma.estimated_power
        assert staged.mp.estimated_power == legacy.mp.estimated_power

    def test_timed_parity(self, tiny):
        legacy = run_flow(tiny, timed=True, n_vectors=512, seed=2)
        staged = (
            Pipeline(FlowConfig(timed=True, n_vectors=512, seed=2)).run(tiny).flow
        )
        assert staged.row() == legacy.row()
        assert staged.ma.resize.final_delay == legacy.ma.resize.final_delay
