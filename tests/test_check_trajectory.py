"""Tests for benchmarks/check_trajectory.py — the bench regression gate.

The checker is a standalone script (benchmarks/ is not a package), so
it is loaded by file path.
"""

import importlib.util
import json
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "check_trajectory.py"
_spec = importlib.util.spec_from_file_location("check_trajectory", _SCRIPT)
check_trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_trajectory)


def _write(tmp_path, name, entries):
    path = tmp_path / f"BENCH_{name}.json"
    path.write_text(
        json.dumps({"benchmark": name, "entries": entries}), encoding="utf-8"
    )
    return path


def _entry(kernel, wall_s, stamp="2026-08-07T00:00:00+0000", metric="wall_s"):
    return {"recorded_at": stamp, "kernel": kernel, metric: wall_s}


def test_clean_trajectory_passes(tmp_path, capsys):
    _write(tmp_path, "components", [_entry("bdd", 1.0), _entry("bdd", 1.05)])
    assert check_trajectory.main(["--bench-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "1 series checked, 0 regression(s)" in out


def test_regression_beyond_threshold_fails(tmp_path, capsys):
    _write(tmp_path, "components", [_entry("bdd", 1.0), _entry("bdd", 1.2)])
    assert check_trajectory.main(["--bench-dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "kernel=bdd" in out
    assert "+20.0%" in out


def test_newest_is_compared_against_best_prior_not_last(tmp_path):
    """A slow creep (1.0 -> 1.1 -> 1.21) must not ratchet the baseline:
    the newest run is 21% over the *best* prior even though each step
    is only 10% over the previous one."""
    entries = [_entry("bdd", 1.0), _entry("bdd", 1.1), _entry("bdd", 1.21)]
    _write(tmp_path, "components", entries)
    assert check_trajectory.main(["--bench-dir", str(tmp_path)]) == 1


def test_threshold_is_adjustable(tmp_path):
    _write(tmp_path, "components", [_entry("bdd", 1.0), _entry("bdd", 1.4)])
    args = ["--bench-dir", str(tmp_path), "--threshold", "0.5"]
    assert check_trajectory.main(args) == 0


def test_series_are_independent(tmp_path, capsys):
    """A regression in one kernel does not hide behind another kernel's
    improvement, and only the regressing series is reported."""
    _write(
        tmp_path,
        "components",
        [
            _entry("fast", 1.0),
            _entry("slow", 2.0),
            _entry("fast", 0.5),
            _entry("slow", 3.0),
        ],
    )
    assert check_trajectory.main(["--bench-dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "kernel=slow" in out
    assert "kernel=fast" not in out


def test_mean_s_metric_and_metricless_series(tmp_path, capsys):
    _write(
        tmp_path,
        "optimizers",
        [
            _entry("anneal", 0.010, metric="mean_s"),
            {"recorded_at": "x", "strategy": "greedy", "avg_power": 15.2},
            {"recorded_at": "x", "strategy": "greedy", "avg_power": 15.2},
            _entry("anneal", 0.020, metric="mean_s"),
        ],
    )
    assert check_trajectory.main(["--bench-dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "mean_s" in out
    assert "1 series checked" in out  # the timing-less series is skipped


def test_single_entry_series_is_skipped(tmp_path, capsys):
    _write(tmp_path, "components", [_entry("bdd", 1.0)])
    assert check_trajectory.main(["--bench-dir", str(tmp_path)]) == 0
    assert "0 series checked" in capsys.readouterr().out


def test_mangled_and_missing_files_are_not_fatal(tmp_path, capsys):
    (tmp_path / "BENCH_broken.json").write_text("not json", encoding="utf-8")
    (tmp_path / "BENCH_shape.json").write_text('{"entries": 5}', encoding="utf-8")
    assert check_trajectory.main(["--bench-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert out.count("not a readable trajectory") == 2


def test_empty_directory_passes(tmp_path, capsys):
    assert check_trajectory.main(["--bench-dir", str(tmp_path)]) == 0
    assert "no BENCH_*.json" in capsys.readouterr().out


def test_repo_trajectories_parse():
    """The committed trajectory files must always be readable by the
    gate (the gate skips unreadable files, so this is the test that
    notices corruption)."""
    bench_dir = _SCRIPT.parent
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        assert check_trajectory.load_entries(path) is not None, path.name
