"""Backend contract, concurrency-hammer, and shared-tier tests for
:mod:`repro.store.backends`.

The existing ``tests/test_store.py`` pins the default local-disk
behaviour (layout, counters, atomicity) through the ``ArtifactStore``
façade; this module exercises the backend layer itself — the SQLite
shared tier under simultaneous threads *and* process-pool workers, the
tiered read-through/write-back path, LRU eviction under size caps, gc
dry runs, and the CLI surface that selects backends.
"""

import json
import os
import pickle
import sqlite3
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.store import (
    ArtifactStore,
    LocalDiskBackend,
    RunRecord,
    RunStore,
    SQLiteBackend,
    TieredBackend,
    make_backend,
)
from repro.store.backends import GCReport

FP = "ab" * 32  # a plausible sha256-hex fingerprint
FP2 = "cd" * 32


def _backends(tmp_path):
    return {
        "local": LocalDiskBackend(str(tmp_path / "disk")),
        "sqlite": SQLiteBackend(str(tmp_path / "db.sqlite")),
        "tiered": TieredBackend(
            LocalDiskBackend(str(tmp_path / "tier-local")),
            SQLiteBackend(str(tmp_path / "tier-shared.sqlite")),
        ),
    }


# ---------------------------------------------------------------------------
# the contract, per backend


@pytest.mark.parametrize("name", ["local", "sqlite", "tiered"])
class TestBackendContract:
    def _store(self, tmp_path, name):
        return ArtifactStore(backend=_backends(tmp_path)[name])

    def test_round_trip_and_miss(self, tmp_path, name):
        store = self._store(tmp_path, name)
        store.put("flow", FP, ("k", 1), {"value": 7})
        assert store.get("flow", FP, ("k", 1)) == {"value": 7}
        assert store.get("flow", FP, ("k", 2)) is None
        assert store.has("flow", FP, ("k", 1))
        assert not store.has("flow", FP, ("k", 2))
        assert store.hits == {"flow": 1} and store.misses == {"flow": 1}

    def test_iter_keys_sorted_and_fingerprints(self, tmp_path, name):
        store = self._store(tmp_path, name)
        store.put("flow", FP2, ("k",), {"v": 1})
        store.put("flow", FP, ("k",), {"v": 2})
        store.put("probs", FP, ("k",), {"v": 3})
        keys = list(store.backend.iter_keys())
        assert keys == sorted(keys, key=lambda k: (k.kind, k.fingerprint, k.digest))
        assert store.fingerprints("flow") == tuple(sorted((FP, FP2)))
        flow_keys = list(store.backend.iter_keys("flow"))
        assert {k.kind for k in flow_keys} == {"flow"}

    def test_stat_delete_clear(self, tmp_path, name):
        store = self._store(tmp_path, name)
        store.put("flow", FP, ("k",), {"v": 1})
        stat = store.backend.stat("flow", FP, store_digest(("k",)))
        assert stat is not None and stat.size > 0
        assert store.backend.delete("flow", FP, store_digest(("k",)))
        assert not store.backend.delete("flow", FP, store_digest(("k",)))
        store.put("flow", FP, ("a",), {"v": 1})
        store.put("probs", FP, ("b",), {"v": 2})
        assert store.clear() == 2
        assert list(store.backend.iter_keys()) == []

    def test_pickle_round_trip_reaches_same_data(self, tmp_path, name):
        store = self._store(tmp_path, name)
        store.put("flow", FP, ("k",), {"v": 5})
        store.flush()
        clone = pickle.loads(pickle.dumps(store))
        assert clone.get("flow", FP, ("k",)) == {"v": 5}
        assert clone.backend.name == store.backend.name

    def test_stale_version_degrades_to_miss(self, tmp_path, name):
        store = self._store(tmp_path, name)
        digest = store_digest(("k",))
        store.backend.put(
            "flow", FP, digest,
            {"version": 999, "kind": "flow", "payload": {"v": 1}},
        )
        assert store.get("flow", FP, ("k",)) is None
        # the bad entry was deleted, not left to fail forever
        assert store.backend.stat("flow", FP, digest) is None

    def test_gc_report_is_an_int(self, tmp_path, name):
        store = self._store(tmp_path, name)
        store.put("flow", FP, ("k",), {"v": 1})
        store.flush()
        report = store.gc(max_age_days=0.0, dry_run=True)
        assert isinstance(report, int) and report >= 1
        assert report.dry_run and all("reason" in e for e in report.entries)
        assert store.has("flow", FP, ("k",))  # nothing deleted
        removed = store.gc(max_age_days=0.0)
        assert removed >= 1 and not removed.dry_run
        assert not store.has("flow", FP, ("k",))


def store_digest(key):
    from repro.store.serialize import key_digest

    return key_digest(key)


# ---------------------------------------------------------------------------
# corruption, per physical backend


class TestCorruptionDegradesToMiss:
    def test_disk_corrupt_file(self, tmp_path):
        backend = LocalDiskBackend(str(tmp_path / "disk"))
        store = ArtifactStore(backend=backend)
        store.put("flow", FP, ("k",), {"v": 1})
        path = backend.blob_path("flow", FP, store_digest(("k",)))
        path.write_text("{ not json", encoding="utf-8")
        assert store.get("flow", FP, ("k",)) is None
        assert not path.exists()
        assert backend.counters()["misses"] == {"flow": 1}

    def test_sqlite_corrupt_row(self, tmp_path):
        db = str(tmp_path / "db.sqlite")
        store = ArtifactStore(backend=SQLiteBackend(db))
        store.put("flow", FP, ("k",), {"v": 1})
        with sqlite3.connect(db) as conn:
            conn.execute("UPDATE blobs SET entry = '{ not json'")
        assert store.get("flow", FP, ("k",)) is None
        with sqlite3.connect(db) as conn:
            assert conn.execute("SELECT COUNT(*) FROM blobs").fetchone()[0] == 0

    def test_sqlite_gc_sweeps_corrupt_rows(self, tmp_path):
        db = str(tmp_path / "db.sqlite")
        store = ArtifactStore(backend=SQLiteBackend(db))
        store.put("flow", FP, ("k",), {"v": 1})
        store.put("flow", FP2, ("k",), {"v": 2})
        with sqlite3.connect(db) as conn:
            conn.execute(
                "UPDATE blobs SET entry = 'garbage' WHERE fingerprint = ?", (FP,)
            )
        report = store.gc()
        assert report == 1
        assert report.entries[0]["reason"] == "unreadable entry"
        assert store.get("flow", FP2, ("k",)) == {"v": 2}


# ---------------------------------------------------------------------------
# LRU eviction under a size cap


class TestEviction:
    @pytest.mark.parametrize("kind_of_backend", ["local", "sqlite"])
    def test_least_recently_hit_goes_first(self, tmp_path, kind_of_backend):
        backend = _backends(tmp_path)[kind_of_backend]
        store = ArtifactStore(backend=backend)
        pad = "x" * 400
        store.put("flow", FP, ("a",), {"pad": pad})
        store.put("flow", FP, ("b",), {"pad": pad})
        if kind_of_backend == "local":
            # age the mtimes so the LRU order is unambiguous
            path_a = backend.blob_path("flow", FP, store_digest(("a",)))
            path_b = backend.blob_path("flow", FP, store_digest(("b",)))
            os.utime(path_a, (1_000, 1_000))
            os.utime(path_b, (2_000, 2_000))
        sizes = [
            backend.stat("flow", FP, store_digest((k,))).size for k in ("a", "b")
        ]
        # cap fits two entries; the put of a third must evict exactly one
        backend.max_bytes = sizes[0] + sizes[1] + sizes[0] // 2
        store.get("flow", FP, ("a",))  # refresh a: b becomes the LRU entry
        store.put("flow", FP, ("c",), {"pad": pad})
        assert store.has("flow", FP, ("a",))
        assert not store.has("flow", FP, ("b",))
        assert store.has("flow", FP, ("c",))
        assert backend.counters()["evictions"] == {"flow": 1}

    def test_uncapped_disk_get_does_not_touch_mtime(self, tmp_path):
        backend = LocalDiskBackend(str(tmp_path / "disk"))
        store = ArtifactStore(backend=backend)
        store.put("flow", FP, ("a",), {"v": 1})
        path = backend.blob_path("flow", FP, store_digest(("a",)))
        os.utime(path, (1_000, 1_000))
        store.get("flow", FP, ("a",))
        assert path.stat().st_mtime == 1_000  # byte/metadata-identical default


# ---------------------------------------------------------------------------
# tiered behaviour


class TestTieredBackend:
    def test_shared_hit_promotes_to_local(self, tmp_path):
        db = str(tmp_path / "shared.sqlite")
        seeder = ArtifactStore(backend=SQLiteBackend(db))
        seeder.put("flow", FP, ("k",), {"v": 9})
        tiered = TieredBackend(
            LocalDiskBackend(str(tmp_path / "local")), SQLiteBackend(db)
        )
        store = ArtifactStore(backend=tiered)
        assert store.get("flow", FP, ("k",)) == {"v": 9}
        # promoted: present in the local tier now, and the next get is local
        assert tiered.local.stat("flow", FP, store_digest(("k",))) is not None
        shared_hits_before = tiered.shared.counters()["hits"].get("flow", 0)
        assert store.get("flow", FP, ("k",)) == {"v": 9}
        assert tiered.shared.counters()["hits"].get("flow", 0) == shared_hits_before

    def test_write_back_lands_in_shared_after_flush(self, tmp_path):
        db = str(tmp_path / "shared.sqlite")
        tiered = TieredBackend(
            LocalDiskBackend(str(tmp_path / "local")), SQLiteBackend(db)
        )
        store = ArtifactStore(backend=tiered)
        store.put("flow", FP, ("k",), {"v": 3})
        store.flush()
        observer = ArtifactStore(backend=SQLiteBackend(db))
        assert observer.get("flow", FP, ("k",)) == {"v": 3}

    def test_fingerprints_include_the_shared_tier(self, tmp_path):
        db = str(tmp_path / "shared.sqlite")
        seeder = ArtifactStore(backend=SQLiteBackend(db))
        seeder.put("flow", FP2, ("k",), {"v": 1})
        store = ArtifactStore(
            backend=TieredBackend(
                LocalDiskBackend(str(tmp_path / "local")), SQLiteBackend(db)
            )
        )
        store.put("flow", FP, ("k",), {"v": 2})
        # what a fleet worker announces as warm: local *and* shared
        assert store.fingerprints("flow") == tuple(sorted((FP, FP2)))

    def test_stats_nest_both_tiers(self, tmp_path):
        store = ArtifactStore(
            backend=TieredBackend(
                LocalDiskBackend(str(tmp_path / "local")),
                SQLiteBackend(str(tmp_path / "shared.sqlite")),
            )
        )
        store.put("flow", FP, ("k",), {"v": 1})
        store.flush()
        record = store.stats().backend
        assert record["backend"] == "tiered"
        assert record["local"]["backend"] == "local-disk"
        assert record["shared"]["backend"] == "sqlite"
        assert record["shared"]["entries"] == {"flow": 1}
        assert record["write_back_errors"] == 0


# ---------------------------------------------------------------------------
# concurrency hammer: threads


class TestSQLiteThreadHammer:
    def test_no_torn_reads_same_entry(self, tmp_path):
        store = ArtifactStore(backend=SQLiteBackend(str(tmp_path / "db.sqlite")))
        n_threads, n_rounds = 8, 25
        payloads = [{"value": i} for i in range(n_threads)]
        errors = []

        def hammer(i):
            try:
                for _ in range(n_rounds):
                    store.put("probs", FP, ("k",), payloads[i])
                    got = store.get("probs", FP, ("k",))
                    assert got in payloads, f"corrupt read: {got!r}"
            except Exception as exc:  # noqa: BLE001 — collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert store.get("probs", FP, ("k",)) in payloads

    def test_counters_exact_with_gc_interleaved(self, tmp_path):
        store = ArtifactStore(backend=SQLiteBackend(str(tmp_path / "db.sqlite")))
        store.put("flow", FP, ("warm",), {"ok": 1})
        n_threads, n_rounds = 8, 30
        errors = []

        def reader(i):
            try:
                for r in range(n_rounds):
                    assert store.get("flow", FP, ("warm",)) == {"ok": 1}
                    assert store.get("flow", FP, ("cold",)) is None
                    if i == 0 and r % 10 == 0:
                        store.gc()  # no age cutoff: must remove nothing
            except Exception as exc:  # noqa: BLE001 — collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert store.hits["flow"] == n_threads * n_rounds
        assert store.misses["flow"] == n_threads * n_rounds
        counters = store.backend.counters()
        assert counters["hits"]["flow"] == n_threads * n_rounds
        assert counters["misses"]["flow"] == n_threads * n_rounds

    def test_tiered_put_hammer_flushes_complete(self, tmp_path):
        db = str(tmp_path / "shared.sqlite")
        store = ArtifactStore(
            backend=TieredBackend(
                LocalDiskBackend(str(tmp_path / "local")), SQLiteBackend(db)
            )
        )
        n_threads, n_each = 6, 10

        def writer(i):
            for j in range(n_each):
                store.put("flow", FP, ("k", i, j), {"value": [i, j]})

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        store.flush()
        observer = ArtifactStore(backend=SQLiteBackend(db))
        for i in range(n_threads):
            for j in range(n_each):
                assert observer.get("flow", FP, ("k", i, j)) == {"value": [i, j]}
        assert store.stats().backend["write_back_errors"] == 0


# ---------------------------------------------------------------------------
# concurrency hammer: process-pool workers sharing one DB


def _pool_hammer(db, i):
    """Worker-process body: put/get/gc against the shared DB."""
    store = ArtifactStore(backend=SQLiteBackend(db))
    observed = []
    for r in range(8):
        store.put("probs", FP, ("shared",), {"value": i})
        got = store.get("probs", FP, ("shared",))
        observed.append(None if got is None else got["value"])
        if r % 4 == 0:
            store.gc()  # no cutoff: prunes nothing, must not disturb readers
    store.close()
    return observed


def _pool_put(db, i):
    store = ArtifactStore(backend=SQLiteBackend(db))
    store.put("flow", FP, ("cross", i), {"value": i})
    store.close()
    return i


def _pool_get(db, i):
    store = ArtifactStore(backend=SQLiteBackend(db))
    got = store.get("flow", FP, ("cross", i))
    hit = store.hits.get("flow", 0)
    store.close()
    return (None if got is None else got["value"], hit)


class TestSQLiteProcessPool:
    def test_cross_process_warm_hits(self, tmp_path):
        """Entries put by one process are warm hits in another — the
        shared-tier acceptance criterion, at the API level."""
        db = str(tmp_path / "shared.sqlite")
        n = 8
        with ProcessPoolExecutor(max_workers=4) as pool:
            assert sorted(pool.map(_pool_put, [db] * n, range(n))) == list(range(n))
        # a different pool (fresh processes) reads every entry warm
        with ProcessPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(_pool_get, [db] * n, range(n)))
        assert [value for value, _ in results] == list(range(n))
        assert all(hit == 1 for _, hit in results)

    def test_pool_hammer_no_torn_reads(self, tmp_path):
        db = str(tmp_path / "shared.sqlite")
        n = 6
        with ProcessPoolExecutor(max_workers=n) as pool:
            all_observed = list(pool.map(_pool_hammer, [db] * n, range(n)))
        valid = set(range(n))
        for observed in all_observed:
            assert observed, "worker observed nothing"
            assert set(observed) <= valid, f"corrupt read among {observed!r}"


# ---------------------------------------------------------------------------
# RunStore over a backend


class TestRunStoreBackend:
    def _record(self, run_id):
        return RunRecord(
            run_id=run_id,
            kind="flow",
            created_at="2026-08-07T00:00:00.000000Z",
            circuits=["tiny"],
            config={"n_vectors": 256},
            records=[{"name": "tiny", "power_mp": 1.0}],
        )

    def test_save_load_query_via_sqlite(self, tmp_path):
        db = str(tmp_path / "shared.sqlite")
        runs = RunStore(backend=SQLiteBackend(db))
        runs.save(self._record("flow-20260807T000000-aaa"))
        runs.save(self._record("flow-20260807T000000-bbb"))
        assert runs.list_ids() == [
            "flow-20260807T000000-aaa",
            "flow-20260807T000000-bbb",
        ]
        loaded = runs.load("flow-20260807T000000-aaa")
        assert loaded.circuits == ["tiny"] and loaded.kind == "flow"
        assert len(runs.query(circuit="tiny", kind="flow")) == 2
        # a second registry over the same DB sees the same history
        other = RunStore(backend=SQLiteBackend(db))
        assert other.list_ids() == runs.list_ids()

    def test_default_layout_unchanged(self, tmp_path):
        runs = RunStore(str(tmp_path / "runs"))
        runs.save(self._record("flow-20260807T000000-ccc"))
        assert (tmp_path / "runs" / "flow-20260807T000000-ccc.json").is_file()


# ---------------------------------------------------------------------------
# the factory and the CLI surface


class TestMakeBackend:
    def test_defaults_to_local(self, tmp_path):
        backend = make_backend(store_dir=str(tmp_path / "s"))
        assert isinstance(backend, LocalDiskBackend)

    def test_shared_path_alone_selects_tiered(self, tmp_path):
        backend = make_backend(
            store_dir=str(tmp_path / "s"),
            shared_path=str(tmp_path / "shared.sqlite"),
        )
        assert isinstance(backend, TieredBackend)
        assert isinstance(backend.shared, SQLiteBackend)

    def test_sqlite_db_defaults_inside_store_dir(self, tmp_path):
        backend = make_backend("sqlite", store_dir=str(tmp_path / "s"))
        assert isinstance(backend, SQLiteBackend)
        assert str(backend.root) == str(tmp_path / "s" / "store.sqlite")

    def test_config_errors(self, tmp_path):
        with pytest.raises(ConfigError):
            make_backend("tiered", store_dir=str(tmp_path))
        with pytest.raises(ConfigError):
            make_backend("local", shared_path=str(tmp_path / "x.sqlite"))
        with pytest.raises(ConfigError):
            make_backend("bogus")

    def test_max_bytes_reaches_the_local_tier(self, tmp_path):
        backend = make_backend(
            store_dir=str(tmp_path / "s"),
            shared_path=str(tmp_path / "shared.sqlite"),
            max_bytes=1024,
        )
        assert backend.local.max_bytes == 1024
        assert backend.shared.max_bytes is None


class TestCLISurface:
    def test_cache_stats_shows_backend_breakdown(self, tmp_path, capsys):
        db = str(tmp_path / "shared.sqlite")
        seeder = ArtifactStore(backend=SQLiteBackend(db))
        seeder.put("flow", FP, ("k",), {"v": 1})
        seeder.get("flow", FP, ("k",))
        assert main(
            ["cache", "stats", "--store-backend", "sqlite", "--shared-store", db]
        ) == 0
        out = capsys.readouterr().out
        assert "per backend:" in out
        assert "[sqlite]" in out and "flow" in out

    def test_cache_gc_dry_run_deletes_nothing(self, tmp_path, capsys):
        store_dir = str(tmp_path / "s")
        store = ArtifactStore(store_dir)
        store.put("flow", FP, ("k",), {"v": 1})
        assert main(
            ["cache", "gc", "--store-dir", store_dir,
             "--max-age-days", "0", "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert "would remove 1" in out and "older than" in out
        assert store.has("flow", FP, ("k",))
        assert main(
            ["cache", "gc", "--store-dir", store_dir, "--max-age-days", "0"]
        ) == 0
        assert "removed 1" in capsys.readouterr().out
        assert not store.has("flow", FP, ("k",))

    def test_tiered_without_shared_store_is_a_config_error(self, tmp_path):
        assert main(
            ["cache", "stats", "--store-dir", str(tmp_path / "s"),
             "--store-backend", "tiered"]
        ) == 2

    def test_second_process_dir_served_warm_from_shared(self, tmp_path, blif_file, capsys):
        """Two synth runs with *fresh* local dirs share one SQLite tier:
        the second is served from the first's write-backs."""
        db = str(tmp_path / "shared.sqlite")
        assert main(
            ["synth", blif_file, "--vectors", "256",
             "--store-dir", str(tmp_path / "local-a"), "--shared-store", db]
        ) == 0
        capsys.readouterr()
        assert main(
            ["synth", blif_file, "--vectors", "256",
             "--store-dir", str(tmp_path / "local-b"), "--shared-store", db]
        ) == 0
        assert "store: served from" in capsys.readouterr().out


@pytest.fixture
def blif_file(tmp_path, small_random):
    from repro.network.blif import save_blif

    path = tmp_path / "small.blif"
    save_blif(small_random, str(path))
    return str(path)
