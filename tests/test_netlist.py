"""Unit tests for repro.network.netlist."""

import pytest

from repro.errors import NetworkError
from repro.network.netlist import (
    GateType,
    LogicNetwork,
    Node,
    SopCover,
    network_from_functions,
)

from helpers import all_input_vectors


class TestGateType:
    def test_sources_have_no_fanin(self):
        assert GateType.INPUT.is_source
        assert GateType.CONST0.is_source
        assert GateType.CONST1.is_source
        assert not GateType.AND.is_source

    def test_monotone_types(self):
        assert GateType.AND.is_monotone
        assert GateType.OR.is_monotone
        assert GateType.BUF.is_monotone
        assert not GateType.NOT.is_monotone
        assert not GateType.XOR.is_monotone

    def test_duals(self):
        assert GateType.AND.dual is GateType.OR
        assert GateType.OR.dual is GateType.AND
        assert GateType.NAND.dual is GateType.NOR
        assert GateType.NOR.dual is GateType.NAND
        assert GateType.BUF.dual is GateType.BUF
        assert GateType.CONST0.dual is GateType.CONST1

    def test_dual_of_xor_raises(self):
        with pytest.raises(NetworkError):
            GateType.XOR.dual


class TestSopCover:
    def test_onset_evaluation(self):
        cover = SopCover(cubes=["11", "0-"], output_value="1")
        assert cover.evaluate([True, True])
        assert cover.evaluate([False, False])
        assert cover.evaluate([False, True])
        assert not cover.evaluate([True, False])

    def test_offset_evaluation(self):
        cover = SopCover(cubes=["11"], output_value="0")
        assert not cover.evaluate([True, True])
        assert cover.evaluate([False, True])

    def test_dont_care_matches_both(self):
        cover = SopCover(cubes=["-1"], output_value="1")
        assert cover.evaluate([False, True])
        assert cover.evaluate([True, True])
        assert not cover.evaluate([True, False])

    def test_validate_rejects_wrong_width(self):
        cover = SopCover(cubes=["1"], output_value="1")
        with pytest.raises(NetworkError):
            cover.validate(2)

    def test_validate_rejects_bad_literal(self):
        cover = SopCover(cubes=["1x"], output_value="1")
        with pytest.raises(NetworkError):
            cover.validate(2)

    def test_validate_rejects_bad_output_value(self):
        cover = SopCover(cubes=["1"], output_value="2")
        with pytest.raises(NetworkError):
            cover.validate(1)


class TestNodeEvaluate:
    @pytest.mark.parametrize(
        "gate_type,values,expected",
        [
            (GateType.AND, [True, True], True),
            (GateType.AND, [True, False], False),
            (GateType.OR, [False, False], False),
            (GateType.OR, [True, False], True),
            (GateType.NAND, [True, True], False),
            (GateType.NOR, [False, False], True),
            (GateType.XOR, [True, False], True),
            (GateType.XOR, [True, True], False),
            (GateType.XNOR, [True, True], True),
            (GateType.NOT, [True], False),
            (GateType.BUF, [True], True),
        ],
    )
    def test_primitive_gates(self, gate_type, values, expected):
        node = Node(name="n", gate_type=gate_type, fanins=["a"] * len(values))
        assert node.evaluate(values) is expected

    def test_mux(self):
        node = Node(name="m", gate_type=GateType.MUX, fanins=["s", "d0", "d1"])
        assert node.evaluate([False, True, False]) is True  # sel=0 -> d0
        assert node.evaluate([True, True, False]) is False  # sel=1 -> d1

    def test_constants(self):
        assert Node(name="c0", gate_type=GateType.CONST0).evaluate([]) is False
        assert Node(name="c1", gate_type=GateType.CONST1).evaluate([]) is True

    def test_xor_many_inputs_is_parity(self):
        node = Node(name="x", gate_type=GateType.XOR, fanins=["a", "b", "c"])
        assert node.evaluate([True, True, True]) is True
        assert node.evaluate([True, True, False]) is False

    def test_sop_without_cover_raises(self):
        node = Node(name="s", gate_type=GateType.SOP, fanins=["a"])
        with pytest.raises(NetworkError):
            node.evaluate([True])


class TestConstruction:
    def test_duplicate_name_rejected(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_input("a")

    def test_not_requires_single_fanin(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_input("b")
        with pytest.raises(NetworkError):
            net.add_gate("n", GateType.NOT, ["a", "b"])

    def test_mux_requires_three_fanins(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_gate("m", GateType.MUX, ["a"])

    def test_sop_requires_cover(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_gate("s", GateType.SOP, ["a"])

    def test_source_cannot_have_fanins(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_gate("c", GateType.CONST0, ["a"])

    def test_latch_init_value_validation(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_latch("l", "a", init_value=7)

    def test_and_needs_at_least_one_fanin(self):
        net = LogicNetwork()
        with pytest.raises(NetworkError):
            net.add_gate("g", GateType.AND, [])

    def test_output_defaults_to_own_name(self, simple_and_or):
        assert simple_and_or.driver_of("x") == "x"

    def test_output_with_explicit_driver(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_output("po", "a")
        assert net.driver_of("po") == "a"

    def test_driver_of_unknown_output_raises(self, simple_and_or):
        with pytest.raises(NetworkError):
            simple_and_or.driver_of("zzz")


class TestValidation:
    def test_unknown_fanin_detected(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("g", GateType.AND, ["a", "a"])
        net.nodes["g"].fanins = ["a", "ghost"]
        with pytest.raises(NetworkError):
            net.validate()

    def test_unknown_output_driver_detected(self):
        net = LogicNetwork()
        net.add_input("a")
        net.outputs.append(("po", "ghost"))
        with pytest.raises(NetworkError):
            net.validate()

    def test_combinational_cycle_detected(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("g1", GateType.AND, ["a", "g2"]) if "g2" in net.nodes else None
        net.add_gate("g2", GateType.OR, ["a", "a"])
        net.add_gate("g1", GateType.AND, ["a", "g2"])
        net.nodes["g2"].fanins = ["a", "g1"]
        with pytest.raises(NetworkError):
            net.validate()

    def test_latch_breaks_cycle(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_latch("l", "g")
        net.add_gate("g", GateType.AND, ["a", "l"])
        net.validate()  # no exception: the loop goes through the latch

    def test_declared_input_with_wrong_type(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("g", GateType.BUF, ["a"])
        net.inputs.append("g")
        with pytest.raises(NetworkError):
            net.validate()


class TestEvaluate:
    def test_simple_truth_table(self, simple_and_or):
        for vec in all_input_vectors(simple_and_or.inputs):
            out = simple_and_or.evaluate_outputs(vec)
            assert out["x"] == ((vec["a"] and vec["b"]) or vec["c"])
            assert out["y"] == (not (vec["a"] and vec["b"]))

    def test_missing_input_raises(self, simple_and_or):
        with pytest.raises(NetworkError):
            simple_and_or.evaluate({"a": True})

    def test_latch_uses_init_value_by_default(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_latch("l", "a", init_value=1)
        net.add_gate("g", GateType.AND, ["a", "l"])
        net.add_output("g")
        out = net.evaluate({"a": True})
        assert out["g"] is True  # latch reads as 1

    def test_latch_state_override(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_latch("l", "a", init_value=1)
        net.add_gate("g", GateType.AND, ["a", "l"])
        net.add_output("g")
        out = net.evaluate({"a": True}, state={"l": False})
        assert out["g"] is False

    def test_next_state_extraction(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_latch("l", "a", init_value=0)
        values = net.evaluate({"a": True})
        assert net.next_state(values) == {"l": True}

    def test_constants_evaluate(self):
        net = LogicNetwork()
        net.add_gate("c0", GateType.CONST0, [])
        net.add_gate("c1", GateType.CONST1, [])
        net.add_gate("g", GateType.OR, ["c0", "c1"])
        net.add_output("g")
        assert net.evaluate_outputs({}) == {"g": True}


class TestTopology:
    def test_topological_order_respects_fanins(self, simple_and_or):
        order = simple_and_or.topological_order()
        pos = {name: i for i, name in enumerate(order)}
        for node in simple_and_or.nodes.values():
            for fi in node.fanins:
                assert pos[fi] < pos[node.name]

    def test_topological_order_covers_all_nodes(self, medium_random):
        order = medium_random.topological_order()
        assert sorted(order) == sorted(medium_random.nodes)

    def test_latches_are_topological_sources(self, fig7):
        order = fig7.topological_order()
        pos = {name: i for i, name in enumerate(order)}
        # Latch output l1 is read by g0; the latch does not depend on
        # its data input in the combinational view.
        assert pos["l1"] < pos["g0"]


class TestEditing:
    def test_remove_node_requires_no_fanouts(self, simple_and_or):
        with pytest.raises(NetworkError):
            simple_and_or.remove_node("ab")

    def test_remove_free_node(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("g", GateType.BUF, ["a"])
        net.remove_node("g")
        assert "g" not in net.nodes

    def test_remove_po_driver_rejected(self, simple_and_or):
        with pytest.raises(NetworkError):
            simple_and_or.remove_node("y")

    def test_replace_fanin(self, simple_and_or):
        simple_and_or.replace_fanin("x", "c", "a")
        assert simple_and_or.nodes["x"].fanins == ["ab", "a"]

    def test_fresh_name_avoids_collisions(self, simple_and_or):
        name1 = simple_and_or.fresh_name("ab")
        assert name1 != "ab"
        assert name1 not in simple_and_or.nodes

    def test_copy_is_deep(self, simple_and_or):
        clone = simple_and_or.copy()
        clone.nodes["x"].fanins[0] = "c"
        assert simple_and_or.nodes["x"].fanins[0] == "ab"
        clone.add_input("zz")
        assert "zz" not in simple_and_or.nodes


class TestStats:
    def test_stats_counts(self, simple_and_or):
        s = simple_and_or.stats()
        assert s["inputs"] == 3
        assert s["outputs"] == 2
        assert s["gates"] == 3
        assert s["inverters"] == 1
        assert s["latches"] == 0

    def test_gates_excludes_sources_and_latches(self, fig7):
        names = {g.name for g in fig7.gates}
        assert "l0" not in names
        assert "a" not in names
        assert "g0" in names

    def test_sources_includes_latches(self, fig7):
        sources = set(fig7.sources())
        assert {"a", "b", "c", "l0", "l1"} <= sources


class TestNetworkFromFunctions:
    def test_truth_table_network(self):
        net, inputs = network_from_functions(
            2, {"xor": lambda v: v[0] ^ v[1], "and": lambda v: v[0] and v[1]}
        )
        for vec in all_input_vectors(inputs):
            out = net.evaluate_outputs(vec)
            assert out["xor"] == (vec["x0"] ^ vec["x1"])
            assert out["and"] == (vec["x0"] and vec["x1"])

    def test_constant_false_function(self):
        net, inputs = network_from_functions(2, {"zero": lambda v: False})
        for vec in all_input_vectors(inputs):
            assert net.evaluate_outputs(vec)["zero"] is False
