"""Tests for unit-delay glitch analysis (Property 2.2)."""

import pytest

from repro.errors import PowerError
from repro.network.duplication import phase_transform
from repro.network.netlist import GateType, LogicNetwork
from repro.phase import PhaseAssignment
from repro.power.glitch import domino_glitch_check, unit_delay_glitch_report


def _glitchy_net():
    """Classic glitch generator: f = a XOR path with unbalanced delays.

    f = AND(a, NOT(a)) settles at 0, but under unit delay a rising 'a'
    makes the AND briefly see (1, 1) -> a spurious pulse.
    """
    net = LogicNetwork("glitchy")
    net.add_input("a")
    net.add_input("b")
    net.add_gate("n", GateType.NOT, ["a"])
    net.add_gate("slow", GateType.AND, ["n", "b"])
    net.add_gate("f", GateType.OR, ["slow", "a"])
    net.add_gate("haz", GateType.AND, ["a", "n"])
    net.add_output("f")
    net.add_output("haz")
    return net


class TestStaticGlitches:
    def test_glitches_detected(self):
        report = unit_delay_glitch_report(_glitchy_net(), n_cycles=2048, seed=0)
        assert report.unit_delay_transitions > report.zero_delay_transitions
        assert report.glitch_fraction > 0.0

    def test_hazard_node_identified(self):
        report = unit_delay_glitch_report(_glitchy_net(), n_cycles=2048, seed=0)
        # 'haz' = a AND NOT(a): every zero-delay transition is a glitch.
        assert report.per_node_glitches["haz"] > 0.05

    def test_balanced_tree_has_no_glitches(self):
        # A single-level network cannot glitch under unit delay.
        net = LogicNetwork("flat")
        for pi in ("a", "b", "c"):
            net.add_input(pi)
        net.add_gate("g1", GateType.AND, ["a", "b"])
        net.add_gate("g2", GateType.OR, ["b", "c"])
        net.add_output("g1")
        net.add_output("g2")
        report = unit_delay_glitch_report(net, n_cycles=2048, seed=1)
        assert report.glitch_transitions == pytest.approx(0.0)

    def test_sequential_rejected(self, fig7):
        with pytest.raises(PowerError):
            unit_delay_glitch_report(fig7)

    def test_too_few_cycles_rejected(self, simple_and_or):
        with pytest.raises(PowerError):
            unit_delay_glitch_report(simple_and_or, n_cycles=1)

    def test_deterministic(self, small_random):
        r1 = unit_delay_glitch_report(small_random, n_cycles=256, seed=7)
        r2 = unit_delay_glitch_report(small_random, n_cycles=256, seed=7)
        assert r1.unit_delay_transitions == r2.unit_delay_transitions

    def test_random_network_glitches_exist(self, medium_random):
        # Multi-level reconvergent logic virtually always glitches.
        report = unit_delay_glitch_report(medium_random, n_cycles=1024, seed=3)
        assert report.glitch_transitions > 0.0


class TestDominoNoGlitch:
    """Property 2.2: domino blocks evaluate monotonically."""

    @pytest.mark.parametrize("bits", range(4))
    def test_fig3_implementations_monotone(self, fig3_aoi, bits):
        a = PhaseAssignment.from_bits(fig3_aoi.output_names(), bits)
        impl = phase_transform(fig3_aoi, a)
        assert domino_glitch_check(impl, n_cycles=256, seed=bits)

    def test_random_network_monotone(self, small_random):
        for seed in range(3):
            a = PhaseAssignment.random(small_random.output_names(), seed=seed)
            impl = phase_transform(small_random, a)
            assert domino_glitch_check(impl, n_cycles=128, seed=seed)

    def test_glitchy_source_becomes_glitch_free_in_domino(self):
        """The same function that glitches in static CMOS is monotone as
        a domino block — the paper's core physical argument."""
        net = _glitchy_net()
        from repro.network.ops import cleanup, to_aoi

        aoi = cleanup(to_aoi(net))
        static_report = unit_delay_glitch_report(aoi, n_cycles=1024, seed=0)
        assert static_report.glitch_transitions > 0
        impl = phase_transform(aoi, PhaseAssignment.all_positive(aoi.output_names()))
        assert domino_glitch_check(impl, n_cycles=1024, seed=0)
