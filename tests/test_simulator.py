"""Unit tests for the Monte-Carlo power simulator (PowerMill substitute)."""

import pytest

from repro.network.duplication import phase_transform
from repro.phase import Phase, PhaseAssignment
from repro.power.estimator import DominoPowerModel, PhaseEvaluator
from repro.power.simulator import (
    SequentialPowerSimulator,
    evaluate_implementation_batch,
    measure_switching_counts,
    simulate_power,
)
from repro.power.probability import random_source_batch


class TestSimulateAgainstEstimator:
    """Zero-delay MC must converge to the analytic estimate (Property 2.2)."""

    @pytest.mark.parametrize("bits", range(4))
    def test_fig3_convergence(self, fig3_aoi, bits):
        input_probs = {pi: 0.9 for pi in fig3_aoi.inputs}
        model = DominoPowerModel()
        ev = PhaseEvaluator(fig3_aoi, input_probs=input_probs, model=model, method="bdd")
        a = PhaseAssignment.from_bits(fig3_aoi.output_names(), bits)
        impl = phase_transform(fig3_aoi, a)
        sim = simulate_power(impl, input_probs=input_probs, model=model,
                             n_vectors=60000, seed=3)
        est = ev.breakdown(a)
        assert sim.domino_energy == pytest.approx(est.domino, rel=0.03)
        assert sim.energy_per_cycle == pytest.approx(est.total, rel=0.05)

    def test_random_network_convergence(self, small_random):
        model = DominoPowerModel(clock_cap_per_gate=0.1)
        ev = PhaseEvaluator(small_random, model=model, method="bdd")
        a = PhaseAssignment.random(small_random.output_names(), seed=5)
        impl = phase_transform(small_random, a)
        sim = simulate_power(impl, model=model, n_vectors=40000, seed=7)
        est = ev.breakdown(a)
        assert sim.energy_per_cycle == pytest.approx(est.total, rel=0.05)


class TestSimulatorMechanics:
    def test_deterministic_with_seed(self, fig3_aoi):
        a = PhaseAssignment.all_positive(fig3_aoi.output_names())
        impl = phase_transform(fig3_aoi, a)
        s1 = simulate_power(impl, n_vectors=1024, seed=11)
        s2 = simulate_power(impl, n_vectors=1024, seed=11)
        assert s1.energy_per_cycle == s2.energy_per_cycle

    def test_current_scale(self, fig3_aoi):
        a = PhaseAssignment.all_positive(fig3_aoi.output_names())
        impl = phase_transform(fig3_aoi, a)
        model = DominoPowerModel(current_scale=0.5)
        sim = simulate_power(impl, model=model, n_vectors=256, seed=0)
        assert sim.current_ma == pytest.approx(0.5 * sim.energy_per_cycle)

    def test_gate_cap_overrides(self, fig3_aoi):
        a = PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE})
        impl = phase_transform(fig3_aoi, a)
        base = simulate_power(impl, n_vectors=2048, seed=0)
        doubled = simulate_power(
            impl,
            n_vectors=2048,
            seed=0,
            gate_cap_overrides={key: 2.0 for key in impl.gates},
        )
        assert doubled.domino_energy == pytest.approx(2 * base.domino_energy)

    def test_batch_evaluation_matches_scalar(self, small_random):
        a = PhaseAssignment.random(small_random.output_names(), seed=2)
        impl = phase_transform(small_random, a)
        batch = random_source_batch(small_random, {pi: 0.5 for pi in small_random.inputs}, 32, seed=4)
        values = evaluate_implementation_batch(impl, batch)
        for k in range(32):
            vec = {pi: bool(batch[pi][k]) for pi in small_random.inputs}
            ref = impl.evaluate_gates(vec)
            for key, arr in values.items():
                assert bool(arr[k]) == ref[key]

    def test_measure_switching_counts_keys(self, fig3_aoi):
        a = PhaseAssignment({"f": Phase.POSITIVE, "g": Phase.NEGATIVE})
        impl = phase_transform(fig3_aoi, a)
        counts = measure_switching_counts(
            impl, input_probs={pi: 0.9 for pi in fig3_aoi.inputs}, n_vectors=50000
        )
        assert counts["total"] == pytest.approx(
            counts["domino_block"]
            + counts["static_inverters_inputs"]
            + counts["static_inverters_outputs"]
        )
        # Figure 5's second realisation: ~0.2019 + ~0.72 + ~0.0019.
        assert counts["domino_block"] == pytest.approx(0.2019, abs=0.02)
        assert counts["static_inverters_inputs"] == pytest.approx(0.72, abs=0.02)


class TestSequentialSimulator:
    def test_rates_and_energy(self, fig7):
        sim = SequentialPowerSimulator(fig7)
        rates = sim.run(n_cycles=200, n_streams=16, seed=1)
        assert "__energy__" in rates
        assert rates["__energy__"] > 0
        for name, rate in rates.items():
            if name != "__energy__":
                assert 0.0 <= rate <= 1.0

    def test_deterministic(self, fig7):
        sim = SequentialPowerSimulator(fig7)
        r1 = sim.run(n_cycles=64, n_streams=8, seed=9)
        r2 = sim.run(n_cycles=64, n_streams=8, seed=9)
        assert r1 == r2
