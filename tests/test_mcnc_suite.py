"""Deeper checks on the calibrated benchmark suite itself."""

import pytest

from repro.bench.mcnc import (
    TABLE1_PAPER_AVERAGES,
    TABLE1_SUITE,
    TABLE2_PAPER_AVERAGES,
    TABLE2_SUITE,
)
from repro.network.ops import cleanup, to_aoi
from repro.network.topo import depth, output_cones


class TestSuiteStructure:
    @pytest.mark.parametrize("spec", TABLE1_SUITE, ids=lambda s: s.name)
    def test_networks_validate(self, spec):
        net = spec.build()
        net.validate()
        assert net.is_combinational

    @pytest.mark.parametrize("spec", TABLE1_SUITE, ids=lambda s: s.name)
    def test_depth_bounded(self, spec):
        """The generated stand-ins stay within multi-level control-logic
        depths (the recency-biased windows chain, so they are deeper
        than two-level but far from pathological)."""
        net = cleanup(to_aoi(spec.build()))
        assert depth(net) <= 80

    @pytest.mark.parametrize("spec", TABLE1_SUITE, ids=lambda s: s.name)
    def test_cones_overlap_within_windows(self, spec):
        """The cost function's O(i,j) term needs non-trivial overlap."""
        net = cleanup(to_aoi(spec.build()))
        cones = output_cones(net)
        names = list(cones)
        overlapping_pairs = 0
        for i in range(len(names)):
            for j in range(i + 1, min(i + 6, len(names))):
                if cones[names[i]] & cones[names[j]]:
                    overlapping_pairs += 1
        assert overlapping_pairs > 0

    @pytest.mark.parametrize("spec", TABLE1_SUITE, ids=lambda s: s.name)
    def test_every_gate_in_some_cone(self, spec):
        """Collector roots must leave no dead logic behind."""
        net = cleanup(to_aoi(spec.build()))
        cones = output_cones(net)
        covered = set()
        for cone in cones.values():
            covered |= cone
        gates = {g.name for g in net.gates}
        dead = gates - covered
        assert len(dead) <= 0.02 * len(gates)

    def test_paper_averages_recorded(self):
        assert TABLE1_PAPER_AVERAGES["power_savings_pct"] == pytest.approx(18.0)
        assert TABLE1_PAPER_AVERAGES["area_penalty_pct"] == pytest.approx(11.8)
        assert TABLE2_PAPER_AVERAGES["power_savings_pct"] == pytest.approx(35.3)

    def test_table1_paper_rows_sum_to_average(self):
        """The recorded per-row paper numbers must reproduce the paper's
        own printed averages (sanity on our transcription)."""
        pens = [s.table1.area_penalty_pct for s in TABLE1_SUITE]
        savs = [s.table1.power_savings_pct for s in TABLE1_SUITE]
        assert sum(pens) / len(pens) == pytest.approx(11.8, abs=0.2)
        assert sum(savs) / len(savs) == pytest.approx(18.0, abs=0.2)

    def test_table2_paper_rows_sum_to_average(self):
        pens = [s.table2.area_penalty_pct for s in TABLE2_SUITE]
        savs = [s.table2.power_savings_pct for s in TABLE2_SUITE]
        # Note: the paper prints "8.6" as the Table 2 area average, but
        # its own rows (7.3 + 50.0 + 6.7 - 20.0)/4 average to 11.0 — an
        # inconsistency in the original (x1's area entry is typeset
        # "6,7").  We transcribe the rows as printed.
        assert sum(pens) / len(pens) == pytest.approx(11.0, abs=0.2)
        assert sum(savs) / len(savs) == pytest.approx(35.3, abs=0.2)
