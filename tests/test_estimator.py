"""Unit tests for the fast phase-aware power estimator."""

import pytest

from repro.errors import PowerError
from repro.network.duplication import Polarity, phase_transform
from repro.network.netlist import GateType, LogicNetwork
from repro.phase import Phase, PhaseAssignment, enumerate_assignments
from repro.power.estimator import (
    DominoPowerModel,
    PhaseEvaluator,
    PolaritySpace,
    estimate_power,
)


class TestPolaritySpace:
    def test_rejects_non_aoi(self):
        net = LogicNetwork("m")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("x", GateType.XOR, ["a", "b"])
        net.add_output("x")
        with pytest.raises(PowerError):
            PolaritySpace(net)

    def test_universe_size(self, fig3_aoi):
        space = PolaritySpace(fig3_aoi)
        # 3 AND/OR nodes x 2 polarities.
        assert space.n_slots == 6

    def test_not_chain_resolution(self, fig3_aoi):
        space = PolaritySpace(fig3_aoi)
        # f's driver is the inverter f_inv; in POS polarity it resolves
        # to (n_x, NEG).
        ref = space.resolve("f_inv", Polarity.POS)
        assert ref.kind == "gate"
        assert ref.key == ("n_x", Polarity.NEG)

    def test_cone_masks_match_transform(self, fig3_aoi):
        space = PolaritySpace(fig3_aoi)
        for bits in range(4):
            a = PhaseAssignment.from_bits(fig3_aoi.output_names(), bits)
            impl = phase_transform(fig3_aoi, a)
            union = set()
            invs = set()
            for po, driver in fig3_aoi.outputs:
                pol = Polarity.POS if a[po] is Phase.POSITIVE else Polarity.NEG
                gmask, imask = space.cone_masks(space.resolve(driver, pol))
                for key, idx in space.gate_index.items():
                    if gmask[idx]:
                        union.add(key)
                for s, si in space.source_index.items():
                    if imask[si]:
                        invs.add(s)
            assert union == set(impl.gates)
            assert invs == impl.input_inverters


class TestPhaseEvaluatorAgainstDirect:
    @pytest.mark.parametrize("bits", range(4))
    def test_matches_estimate_power_fig3(self, fig3_aoi, bits):
        model = DominoPowerModel(clock_cap_per_gate=0.2, cap_per_fanin=0.1)
        input_probs = {pi: 0.9 for pi in fig3_aoi.inputs}
        ev = PhaseEvaluator(fig3_aoi, input_probs=input_probs, model=model, method="bdd")
        a = PhaseAssignment.from_bits(fig3_aoi.output_names(), bits)
        fast = ev.breakdown(a)
        direct = estimate_power(
            fig3_aoi, a, input_probs=input_probs, model=model, method="bdd"
        )
        assert fast.total == pytest.approx(direct.total)
        assert fast.n_gates == direct.n_gates
        assert fast.n_input_inverters == direct.n_input_inverters
        assert fast.n_output_inverters == direct.n_output_inverters

    def test_matches_on_random_network(self, small_random):
        model = DominoPowerModel()
        ev = PhaseEvaluator(small_random, model=model, method="bdd")
        for seed in range(5):
            a = PhaseAssignment.random(small_random.output_names(), seed=seed)
            fast = ev.power(a)
            direct = estimate_power(small_random, a, model=model, method="bdd").total
            assert fast == pytest.approx(direct)

    def test_area_matches_transform(self, small_random):
        ev = PhaseEvaluator(small_random, method="bdd")
        for seed in range(5):
            a = PhaseAssignment.random(small_random.output_names(), seed=seed)
            impl = phase_transform(small_random, a)
            expected = (
                impl.n_gates + len(impl.input_inverters) + len(impl.output_inverters)
            )
            assert ev.area(a) == expected


class TestFigure5Numbers:
    """The exact arithmetic of the paper's Figure 5 (inputs at 0.9)."""

    @pytest.fixture
    def ev(self, fig3_aoi):
        model = DominoPowerModel(gate_cap=1.0, inverter_cap=1.0)
        return PhaseEvaluator(
            fig3_aoi, input_probs={pi: 0.9 for pi in fig3_aoi.inputs},
            model=model, method="bdd",
        )

    def test_min_area_realisation_switching(self, ev):
        a = PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE})
        b = ev.breakdown(a)
        # Positive cone: .99 + .81 + .9981 = 2.7981; output inverter .9981.
        assert b.domino == pytest.approx(2.7981, abs=1e-4)
        assert b.output_inverters == pytest.approx(0.9981, abs=1e-4)
        assert b.input_inverters == 0.0

    def test_low_power_realisation_switching(self, ev):
        a = PhaseAssignment({"f": Phase.POSITIVE, "g": Phase.NEGATIVE})
        b = ev.breakdown(a)
        # Negative cone: .01 + .19 + .0019 = .2019; 4 input inverters at
        # 2*.9*.1 = .18 each; output inverter .0019.
        assert b.domino == pytest.approx(0.2019, abs=1e-4)
        assert b.input_inverters == pytest.approx(0.72, abs=1e-6)
        assert b.output_inverters == pytest.approx(0.0019, abs=1e-4)

    def test_reduction_is_about_75_percent(self, ev):
        ma = ev.power(PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE}))
        mp = ev.power(PhaseAssignment({"f": Phase.POSITIVE, "g": Phase.NEGATIVE}))
        reduction = 100.0 * (ma - mp) / ma
        assert 70.0 < reduction < 80.0


class TestModelKnobs:
    def test_clock_load_scales_with_gates(self, fig3_aoi):
        base = PhaseEvaluator(
            fig3_aoi, model=DominoPowerModel(clock_cap_per_gate=0.0), method="bdd"
        )
        clocked = PhaseEvaluator(
            fig3_aoi, model=DominoPowerModel(clock_cap_per_gate=1.0), method="bdd"
        )
        a = PhaseAssignment.all_positive(fig3_aoi.output_names())
        diff = clocked.power(a) - base.power(a)
        assert diff == pytest.approx(base.breakdown(a).n_gates)

    def test_boundary_inverters_can_be_excluded(self, fig3_aoi):
        model = DominoPowerModel(include_boundary_inverters=False)
        ev = PhaseEvaluator(
            fig3_aoi, input_probs={pi: 0.9 for pi in fig3_aoi.inputs},
            model=model, method="bdd",
        )
        b = ev.breakdown(PhaseAssignment({"f": Phase.POSITIVE, "g": Phase.NEGATIVE}))
        assert b.input_inverters == 0.0
        assert b.output_inverters == 0.0
        assert b.n_output_inverters == 1  # still counted structurally

    def test_and_series_penalty(self):
        model = DominoPowerModel(and_series_penalty=0.5)
        assert model.gate_factor(GateType.AND, 3) == pytest.approx(1.0 * (1 + 0.5 * 2))
        assert model.gate_factor(GateType.OR, 3) == pytest.approx(1.0)

    def test_gate_factor_with_fanin_cap(self):
        model = DominoPowerModel(cap_per_fanin=0.2)
        assert model.gate_factor(GateType.OR, 4) == pytest.approx(1.8)


class TestConeQueries:
    def test_cone_size_phase_invariant(self, small_random):
        ev = PhaseEvaluator(small_random, method="bdd")
        for po in ev.outputs:
            assert ev.cone_size(po, Phase.POSITIVE) == ev.cone_size(po, Phase.NEGATIVE)

    def test_average_cone_probability_flips(self, small_random):
        ev = PhaseEvaluator(small_random, method="bdd")
        a = PhaseAssignment.all_positive(small_random.output_names())
        po = ev.outputs[0]
        avg_pos = ev.average_cone_probability(a, po)
        avg_neg = ev.average_cone_probability(a.flipped(po), po)
        assert avg_pos + avg_neg == pytest.approx(1.0)

    def test_breakdown_area_cells(self, fig3_aoi):
        ev = PhaseEvaluator(fig3_aoi, method="bdd")
        a = PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE})
        b = ev.breakdown(a)
        assert b.area_cells == ev.area(a)
