"""Tests for the experiment drivers — each asserts the paper's *shape*."""

import pytest

from repro.experiments.figure2 import format_figure2, run_figure2
from repro.experiments.figure5 import format_figure5, run_figure5
from repro.experiments.figure9 import format_figure9, run_figure9
from repro.experiments.figure10 import format_figure10, run_figure10


class TestFigure2:
    def test_monte_carlo_matches_analytic(self):
        points = run_figure2(probabilities=[0.0, 0.25, 0.5, 0.75, 1.0], n_vectors=40000)
        for pt in points:
            assert pt.domino_measured == pytest.approx(pt.domino_analytic, abs=0.01)
            assert pt.static_measured == pytest.approx(pt.static_analytic, abs=0.01)

    def test_domino_dominates_above_half(self):
        points = run_figure2(probabilities=[0.6, 0.8, 0.95], n_vectors=2000)
        for pt in points:
            assert pt.domino_analytic > pt.static_analytic

    def test_formatting(self):
        text = format_figure2(run_figure2(probabilities=[0.5], n_vectors=128))
        assert "Figure 2" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5(n_vectors=50000, seed=0)

    def test_four_assignments(self, result):
        assert len(result.rows) == 4

    def test_min_area_is_not_min_power(self, result):
        # The paper's headline: the two objectives pick different phases.
        assert result.min_area_row is not result.min_power_row

    def test_reduction_around_75_percent(self, result):
        assert 65.0 <= result.switching_reduction_percent <= 85.0

    def test_estimates_match_measurement(self, result):
        for row in result.rows:
            assert row.total_measured == pytest.approx(row.total_estimated, rel=0.05)

    def test_formatting(self, result):
        text = format_figure5(result)
        assert "min area" in text
        assert "min power" in text


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure9()

    def test_classic_reductions_stuck(self, result):
        assert result.reduced_vertices_plain == 5

    def test_symmetry_groups_to_two_supervertices(self, result):
        assert result.reduced_vertices_enhanced == 2
        assert result.supervertices == {"A+B+E": 3, "C+D": 2}

    def test_enhanced_matches_exact(self, result):
        assert result.greedy_enhanced_size == result.exact_size == 2

    def test_all_fvs_valid(self, result):
        assert result.greedy_plain_valid
        assert result.greedy_enhanced_valid

    def test_formatting(self, result):
        text = format_figure9(result)
        assert "supervertex" in text


class TestFigure10:
    @pytest.fixture(scope="class")
    def results(self):
        return run_figure10()

    def test_domino_ordering_wins(self, results):
        fig = next(r for r in results if r.circuit == "figure10")
        counts = fig.node_counts
        assert counts["domino"] <= counts["disturbed"] <= counts["topological"]

    def test_wins_on_extra_circuit(self):
        from repro.bench.generators import GeneratorConfig, random_control_network

        cfg = GeneratorConfig(n_inputs=14, n_outputs=4, n_gates=35, seed=2)
        extra = {"rand": random_control_network("rand", cfg)}
        results = run_figure10(extra_circuits=extra)
        r = next(x for x in results if x.circuit == "rand")
        assert r.node_counts["domino"] <= r.node_counts["topological"]

    def test_formatting(self, results):
        text = format_figure10(results)
        assert "Figure 10" in text
        assert "figure10" in text
