"""Tests for the minimal logging setup (:mod:`repro.log`)."""

import io
import logging

import pytest

from repro.errors import ConfigError
from repro.log import (
    LOG_LEVELS,
    add_log_level_flag,
    configure_logging,
    get_logger,
    parse_level,
)


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    logger = logging.getLogger("repro")
    before = list(logger.handlers)
    yield
    for handler in list(logger.handlers):
        if handler not in before:
            logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


class TestParseLevel:
    def test_names_and_numbers(self):
        assert parse_level("info") == logging.INFO
        assert parse_level("DEBUG") == logging.DEBUG
        assert parse_level(" warning ") == logging.WARNING
        assert parse_level(25) == 25

    def test_every_advertised_name_parses(self):
        for name in LOG_LEVELS:
            assert parse_level(name) == getattr(logging, name.upper())

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigError, match="bad log level"):
            parse_level("loud")
        with pytest.raises(ConfigError, match="bad log level"):
            parse_level(True)


class TestConfigureLogging:
    def test_writes_formatted_lines_to_stream(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        get_logger("fleet").info("worker %s registered", "w1")
        line = stream.getvalue()
        assert "worker w1 registered" in line
        assert "repro.fleet" in line
        assert "INFO" in line

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        get_logger().info("quiet")
        get_logger().warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_idempotent_reconfigure_never_stacks_handlers(self):
        logger = logging.getLogger("repro")
        before = len(logger.handlers)
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        configure_logging("debug", stream=stream)
        configure_logging("info", stream=stream)
        assert len(logger.handlers) == before + 1
        get_logger().info("once")
        assert stream.getvalue().count("once") == 1

    def test_propagation_disabled(self):
        configure_logging("info", stream=io.StringIO())
        assert logging.getLogger("repro").propagate is False


class TestFlag:
    def test_add_log_level_flag(self):
        import argparse

        parser = argparse.ArgumentParser()
        add_log_level_flag(parser)
        assert parser.parse_args([]).log_level == "info"
        assert parser.parse_args(["--log-level", "debug"]).log_level == "debug"
