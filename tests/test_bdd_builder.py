"""Unit tests for network-to-BDD construction and orderings."""

import itertools

import pytest

from repro.errors import BddError
from repro.bdd.builder import build_node_bdds, compare_orderings
from repro.bdd.ordering import (
    declaration_order,
    disturbed_order,
    domino_variable_order,
    naive_topological_order,
    order_variables,
)
from repro.network.netlist import GateType, LogicNetwork, SopCover

from helpers import all_input_vectors


class TestBuilderCorrectness:
    def test_bdds_match_simulation(self, small_random):
        bdds = build_node_bdds(small_random)
        import random

        rng = random.Random(0)
        for _ in range(64):
            vec = {pi: rng.random() < 0.5 for pi in small_random.inputs}
            values = small_random.evaluate(vec)
            for po, driver in small_random.outputs:
                assert bdds.manager.evaluate(bdds.bdd_of(driver), vec) == values[driver]

    def test_exhaustive_on_figure3(self, fig3):
        bdds = build_node_bdds(fig3)
        for vec in all_input_vectors(fig3.inputs):
            values = fig3.evaluate(vec)
            for po, driver in fig3.outputs:
                assert bdds.manager.evaluate(bdds.bdd_of(driver), vec) == values[driver]

    def test_probabilities_match_enumeration(self, fig3):
        bdds = build_node_bdds(fig3)
        probs = {pi: 0.5 for pi in fig3.inputs}
        for po, driver in fig3.outputs:
            count = sum(
                fig3.evaluate(vec)[driver] for vec in all_input_vectors(fig3.inputs)
            )
            expected = count / 16.0
            assert bdds.probability(driver, probs) == pytest.approx(expected)

    def test_all_gate_types(self):
        net = LogicNetwork("m")
        for pi in ("a", "b", "c"):
            net.add_input(pi)
        net.add_gate("and2", GateType.AND, ["a", "b"])
        net.add_gate("or2", GateType.OR, ["a", "b"])
        net.add_gate("nand2", GateType.NAND, ["a", "b"])
        net.add_gate("nor2", GateType.NOR, ["a", "b"])
        net.add_gate("xor2", GateType.XOR, ["a", "b"])
        net.add_gate("xnor2", GateType.XNOR, ["a", "b"])
        net.add_gate("mux", GateType.MUX, ["a", "b", "c"])
        net.add_gate("inv", GateType.NOT, ["a"])
        net.add_gate(
            "sop",
            GateType.SOP,
            ["a", "b"],
            cover=SopCover(cubes=["1-", "01"], output_value="0"),
        )
        for g in list(net.nodes):
            if net.nodes[g].gate_type not in (GateType.INPUT,):
                net.add_output(f"po_{g}", g)
        bdds = build_node_bdds(net)
        for vec in all_input_vectors(net.inputs):
            values = net.evaluate(vec)
            for po, driver in net.outputs:
                assert bdds.manager.evaluate(bdds.bdd_of(driver), vec) == values[driver]

    def test_unrequested_node_has_no_bdd(self, simple_and_or):
        bdds = build_node_bdds(simple_and_or, roots=["x"])
        with pytest.raises(BddError):
            bdds.bdd_of("y")

    def test_budget_propagates(self, medium_random):
        with pytest.raises(BddError):
            build_node_bdds(medium_random, max_nodes=4)

    def test_latch_outputs_are_variables(self, fig7):
        bdds = build_node_bdds(fig7, roots=["g1"])
        assert "l1" in bdds.manager.variables


class TestSharedSize:
    def test_shared_size_counts_all_roots(self, fig10):
        bdds = build_node_bdds(fig10)
        total = bdds.shared_size()
        assert total > 0
        assert total <= bdds.manager.node_count

    def test_shared_size_subset(self, fig10):
        bdds = build_node_bdds(fig10)
        assert bdds.shared_size(["Q"]) <= bdds.shared_size(["Q", "R"])


class TestOrderings:
    def test_domino_order_is_reverse_of_topological(self, fig10):
        dom = domino_variable_order(fig10)
        topo = naive_topological_order(fig10)
        assert dom == list(reversed(topo))

    def test_orders_are_permutations(self, medium_random):
        base = set(medium_random.inputs)
        for strategy in ("domino", "topological", "disturbed", "declaration"):
            order = order_variables(medium_random, strategy)
            assert set(order) == base

    def test_unknown_strategy_raises(self, fig10):
        with pytest.raises(ValueError):
            order_variables(fig10, "bogus")

    def test_declaration_order_restricted_to_cone(self, simple_and_or):
        order = declaration_order(simple_and_or, roots=["y"])
        assert order == ["a", "b"]

    def test_disturbed_differs_from_domino(self, medium_random):
        dom = domino_variable_order(medium_random)
        dis = disturbed_order(medium_random)
        assert dom != dis

    def test_figure10_order(self, fig10):
        # First visit: Q (larger fanout cone) then P then R.
        topo = naive_topological_order(fig10)
        assert topo == ["x3", "x4", "x1", "x2", "x5"]
        assert domino_variable_order(fig10) == ["x5", "x2", "x1", "x4", "x3"]


class TestCompareOrderings:
    def test_figure10_shape(self, fig10):
        counts = compare_orderings(fig10)
        assert counts["domino"] <= counts["disturbed"] <= counts["topological"]

    def test_all_orderings_same_function(self, fig10):
        # Node counts differ, functions must not.
        for strategy in ("domino", "topological", "disturbed"):
            bdds = build_node_bdds(fig10, ordering=strategy)
            for vec in all_input_vectors(fig10.inputs):
                values = fig10.evaluate(vec)
                for po, driver in fig10.outputs:
                    assert (
                        bdds.manager.evaluate(bdds.bdd_of(driver), vec)
                        == values[driver]
                    )
