"""Tests for DOT export."""

import pytest

from repro.network.duplication import phase_transform
from repro.phase import Phase, PhaseAssignment
from repro.seq.transforms import apply_symmetry_grouping, figure9_graph
from repro.viz import implementation_to_dot, network_to_dot, sgraph_to_dot


class TestNetworkDot:
    def test_contains_all_nodes_and_edges(self, simple_and_or):
        dot = network_to_dot(simple_and_or)
        for name in simple_and_or.nodes:
            assert f'"{name}"' in dot
        assert '"ab" -> "x"' in dot
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_outputs_rendered(self, simple_and_or):
        dot = network_to_dot(simple_and_or)
        assert '"PO:x"' in dot
        assert '"PO:y"' in dot

    def test_probability_labels(self, simple_and_or):
        dot = network_to_dot(simple_and_or, probabilities={"ab": 0.25})
        assert "p=0.250" in dot

    def test_latch_edges_dashed(self, fig7):
        dot = network_to_dot(fig7)
        assert "style=dashed" in dot


class TestImplementationDot:
    def test_polarity_styling(self, fig3_aoi):
        a = PhaseAssignment({"f": Phase.POSITIVE, "g": Phase.POSITIVE})
        impl = phase_transform(fig3_aoi, a)
        dot = implementation_to_dot(impl)
        assert "fillcolor=lightgrey" in dot  # negative-polarity gates
        assert "cluster_block" in dot
        # All four input inverters drawn.
        for pi in ("a", "b", "c", "d"):
            assert f'"{pi}_inv"' in dot

    def test_boundary_inverter_for_negative_phase(self, fig3_aoi):
        a = PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.POSITIVE})
        impl = phase_transform(fig3_aoi, a)
        dot = implementation_to_dot(impl)
        assert '"f_phase_inv"' in dot


class TestSGraphDot:
    def test_vertices_and_edges(self):
        g = figure9_graph()
        dot = sgraph_to_dot(g)
        for v in "ABCDE":
            assert f'"{v}"' in dot
        assert '"A" -> "C"' in dot

    def test_supervertex_weights_labelled(self):
        g = figure9_graph()
        apply_symmetry_grouping(g)
        dot = sgraph_to_dot(g)
        assert "w=3" in dot
        assert "w=2" in dot
        assert "doublecircle" in dot
