"""Unit tests for the ROBDD manager."""

import itertools

import pytest

from repro.errors import BddError
from repro.bdd.manager import ONE, ZERO, BddManager


@pytest.fixture
def mgr():
    return BddManager(["a", "b", "c"])


class TestPrimitives:
    def test_var_and_nvar(self, mgr):
        a = mgr.var("a")
        na = mgr.nvar("a")
        assert mgr.evaluate(a, {"a": True})
        assert not mgr.evaluate(a, {"a": False})
        assert mgr.evaluate(na, {"a": False})

    def test_unknown_variable_raises(self, mgr):
        with pytest.raises(BddError):
            mgr.var("zzz")

    def test_duplicate_variables_rejected(self):
        with pytest.raises(BddError):
            BddManager(["a", "a"])

    def test_reduction_no_redundant_nodes(self, mgr):
        # ite(a, x, x) must collapse to x.
        b = mgr.var("b")
        f = mgr.ite(mgr.var("a"), b, b)
        assert f == b

    def test_unique_table_sharing(self, mgr):
        f1 = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        f2 = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        assert f1 == f2


class TestOperations:
    def _truth(self, mgr, f, names):
        table = []
        for bits in itertools.product([False, True], repeat=len(names)):
            table.append(mgr.evaluate(f, dict(zip(names, bits))))
        return table

    def test_and(self, mgr):
        f = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        assert self._truth(mgr, f, ["a", "b"]) == [False, False, False, True]

    def test_or(self, mgr):
        f = mgr.apply_or(mgr.var("a"), mgr.var("b"))
        assert self._truth(mgr, f, ["a", "b"]) == [False, True, True, True]

    def test_xor(self, mgr):
        f = mgr.apply_xor(mgr.var("a"), mgr.var("b"))
        assert self._truth(mgr, f, ["a", "b"]) == [False, True, True, False]

    def test_not(self, mgr):
        f = mgr.apply_not(mgr.var("a"))
        assert self._truth(mgr, f, ["a"]) == [True, False]

    def test_double_not_is_identity(self, mgr):
        a = mgr.var("a")
        assert mgr.apply_not(mgr.apply_not(a)) == a

    def test_terminal_cases(self, mgr):
        a = mgr.var("a")
        assert mgr.apply_and(a, ZERO) == ZERO
        assert mgr.apply_and(a, ONE) == a
        assert mgr.apply_or(a, ONE) == ONE
        assert mgr.apply_or(a, ZERO) == a

    def test_ite_select(self, mgr):
        f = mgr.ite(mgr.var("a"), mgr.var("b"), mgr.var("c"))
        for a, b, c in itertools.product([False, True], repeat=3):
            expected = b if a else c
            assert mgr.evaluate(f, {"a": a, "b": b, "c": c}) == expected

    def test_apply_many_and(self, mgr):
        f = mgr.apply_many("and", [mgr.var("a"), mgr.var("b"), mgr.var("c")])
        assert mgr.evaluate(f, {"a": True, "b": True, "c": True})
        assert not mgr.evaluate(f, {"a": True, "b": False, "c": True})

    def test_apply_many_empty_raises(self, mgr):
        with pytest.raises(BddError):
            mgr.apply_many("and", [])

    def test_apply_many_unknown_op(self, mgr):
        with pytest.raises(BddError):
            mgr.apply_many("nand", [mgr.var("a")])

    def test_complement_via_xor_one(self, mgr):
        a = mgr.var("a")
        assert mgr.apply_xor(a, ONE) == mgr.apply_not(a)


class TestProbability:
    def test_var_probability(self, mgr):
        assert mgr.probability(mgr.var("a"), {"a": 0.3}) == pytest.approx(0.3)

    def test_and_probability_independent(self, mgr):
        f = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        p = mgr.probability(f, {"a": 0.3, "b": 0.5})
        assert p == pytest.approx(0.15)

    def test_or_probability(self, mgr):
        f = mgr.apply_or(mgr.var("a"), mgr.var("b"))
        p = mgr.probability(f, {"a": 0.3, "b": 0.5})
        assert p == pytest.approx(0.3 + 0.5 - 0.15)

    def test_terminals(self, mgr):
        assert mgr.probability(ZERO, {}) == 0.0
        assert mgr.probability(ONE, {}) == 1.0

    def test_missing_probability_defaults_half(self, mgr):
        f = mgr.var("a")
        assert mgr.probability(f, {}) == pytest.approx(0.5)

    def test_xor_probability(self, mgr):
        f = mgr.apply_xor(mgr.var("a"), mgr.var("b"))
        p = mgr.probability(f, {"a": 0.9, "b": 0.9})
        assert p == pytest.approx(2 * 0.9 * 0.1)

    def test_shared_variable_correlation_handled(self, mgr):
        # f = a AND NOT a == 0 — BDDs handle reconvergence exactly.
        f = mgr.apply_and(mgr.var("a"), mgr.apply_not(mgr.var("a")))
        assert f == ZERO


class TestAnalysis:
    def test_dag_size_of_var(self, mgr):
        assert mgr.dag_size([mgr.var("a")]) == 1

    def test_dag_size_shares_nodes(self, mgr):
        f = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        g = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        assert mgr.dag_size([f, g]) == mgr.dag_size([f])

    def test_dag_size_of_terminals(self, mgr):
        assert mgr.dag_size([ZERO, ONE]) == 0

    def test_support(self, mgr):
        f = mgr.apply_and(mgr.var("a"), mgr.var("c"))
        assert mgr.support_of(f) == {"a", "c"}

    def test_count_minterms(self, mgr):
        f = mgr.apply_or(mgr.var("a"), mgr.var("b"))
        # Over 3 variables: OR of two vars has 6 of 8 minterms.
        assert mgr.count_minterms(f) == 6

    def test_count_minterms_custom_width(self, mgr):
        f = mgr.var("a")
        assert mgr.count_minterms(f, n_vars=1) == 1


class TestBudget:
    def test_node_budget_enforced(self):
        names = [f"x{i}" for i in range(24)]
        small = BddManager(names, max_nodes=16)
        with pytest.raises(BddError):
            acc = ONE
            for name in names:
                acc = small.apply_xor(acc, small.var(name))

    def test_node_count_grows(self, mgr):
        before = mgr.node_count
        mgr.apply_and(mgr.var("a"), mgr.var("b"))
        assert mgr.node_count > before


class TestVariableOrderingEffects:
    def test_order_changes_size(self):
        # f = (a1 & b1) | (a2 & b2) | (a3 & b3): interleaved order is
        # linear, separated order is exponential — the classic example.
        inter = BddManager(["a1", "b1", "a2", "b2", "a3", "b3"])
        sep = BddManager(["a1", "a2", "a3", "b1", "b2", "b3"])

        def build(m):
            terms = [
                m.apply_and(m.var(f"a{i}"), m.var(f"b{i}")) for i in (1, 2, 3)
            ]
            return m.apply_many("or", terms)

        fi = build(inter)
        fs = build(sep)
        assert inter.dag_size([fi]) < sep.dag_size([fs])
