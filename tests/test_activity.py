"""Unit tests for switching-activity models (paper Section 2 / Figure 2)."""

import pytest

from repro.power.activity import (
    boundary_input_inverter_switching,
    boundary_output_inverter_switching,
    domino_switching,
    figure2_series,
    static_switching,
    switching_curve,
)


class TestDominoModel:
    def test_property_2_1_identity(self):
        # Domino switching equals signal probability.
        for p in (0.0, 0.1, 0.5, 0.9, 1.0):
            assert domino_switching(p) == p

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            domino_switching(1.5)
        with pytest.raises(ValueError):
            domino_switching(-0.1)


class TestStaticModel:
    def test_peak_at_half(self):
        assert static_switching(0.5) == pytest.approx(0.5)

    def test_zero_at_extremes(self):
        assert static_switching(0.0) == 0.0
        assert static_switching(1.0) == 0.0

    def test_symmetry(self):
        for p in (0.1, 0.3, 0.45):
            assert static_switching(p) == pytest.approx(static_switching(1 - p))

    def test_domino_exceeds_static_above_half(self):
        # The Figure 2 asymmetry: for p > 0.5 domino switches more; the
        # curves cross at p = 0 and p = 2/3... actually 2p(1-p) < p for
        # p > 1/2 always.
        for p in (0.51, 0.7, 0.95):
            assert domino_switching(p) > static_switching(p)

    def test_static_exceeds_domino_at_low_probability(self):
        for p in (0.1, 0.3, 0.45):
            assert static_switching(p) > domino_switching(p)


class TestBoundaryInverters:
    def test_input_side_uses_static_model(self):
        assert boundary_input_inverter_switching(0.9) == pytest.approx(
            static_switching(0.9)
        )

    def test_output_side_follows_driver(self):
        # Figure 5 accounting: output inverter toggles when the domino
        # gate fires.
        assert boundary_output_inverter_switching(0.0019) == pytest.approx(0.0019)

    def test_output_side_range_check(self):
        with pytest.raises(ValueError):
            boundary_output_inverter_switching(2.0)


class TestCurves:
    def test_curve_endpoints(self):
        curve = switching_curve(domino_switching, points=11)
        assert curve[0]["signal_probability"] == 0.0
        assert curve[-1]["signal_probability"] == 1.0
        assert len(curve) == 11

    def test_figure2_series_keys(self):
        series = figure2_series(points=5)
        assert set(series) == {"domino", "static"}
        assert len(series["domino"]) == 5

    def test_figure2_values(self):
        series = figure2_series(points=3)
        mid_domino = series["domino"][1]
        mid_static = series["static"][1]
        assert mid_domino["switching_probability"] == pytest.approx(0.5)
        assert mid_static["switching_probability"] == pytest.approx(0.5)
