"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from helpers import all_input_vectors  # noqa: F401  (re-export for legacy imports)

from repro.bench.figures import figure3_network, figure7_network, figure10_network
from repro.bench.generators import GeneratorConfig, random_control_network
from repro.network.netlist import GateType, LogicNetwork
from repro.network.ops import cleanup, to_aoi


@pytest.fixture
def fig3():
    """The paper's f/g example network (with the internal inverter)."""
    return figure3_network()


@pytest.fixture
def fig3_aoi(fig3):
    return cleanup(to_aoi(fig3))


@pytest.fixture
def fig10():
    return figure10_network()


@pytest.fixture
def fig7():
    return figure7_network()


@pytest.fixture
def small_random():
    """A 10-input, 4-output random AOI network (deterministic)."""
    cfg = GeneratorConfig(n_inputs=10, n_outputs=4, n_gates=30, seed=7)
    return cleanup(to_aoi(random_control_network("small", cfg)))


@pytest.fixture
def medium_random():
    """A 16-input, 6-output random AOI network (deterministic)."""
    cfg = GeneratorConfig(
        n_inputs=16, n_outputs=6, n_gates=60, seed=11, support_size=10
    )
    return cleanup(to_aoi(random_control_network("medium", cfg)))


def make_simple_and_or() -> LogicNetwork:
    """x = (a AND b) OR c, y = NOT(a AND b)."""
    net = LogicNetwork("simple")
    for pi in ("a", "b", "c"):
        net.add_input(pi)
    net.add_gate("ab", GateType.AND, ["a", "b"])
    net.add_gate("x", GateType.OR, ["ab", "c"])
    net.add_gate("y", GateType.NOT, ["ab"])
    net.add_output("x")
    net.add_output("y")
    net.validate()
    return net


@pytest.fixture
def simple_and_or():
    return make_simple_and_or()
