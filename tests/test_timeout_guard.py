"""Regression tests for the off-main-thread timeout watchdog's
disarm race: a timer firing in the window between item completion and
disarm must never inject :class:`ItemTimeout` into the worker's next
item, into unrelated code, or out of disarm itself."""

import ctypes
import threading
import time

from repro.core.batch import (
    ItemTimeout,
    _disarm_quietly,
    _ThreadWatchdog,
    _WATCHDOG_GENERATION,
)

SET_ASYNC_EXC = ctypes.pythonapi.PyThreadState_SetAsyncExc


def run_in_thread(fn, timeout=120):
    box = {}

    def target():
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 — reraised below
            box["error"] = exc

    t = threading.Thread(target=target)
    t.start()
    t.join(timeout=timeout)
    assert not t.is_alive(), "worker thread hung"
    if "error" in box:
        raise box["error"]
    return box["value"]


def drain_pending_exceptions():
    """Give any still-pending async exception a place to surface."""
    try:
        for _ in range(200_000):
            pass
        time.sleep(0.005)
        return None
    except ItemTimeout:
        return "poisoned"


class TestGenerationToken:
    def test_fire_after_disarm_is_a_noop(self):
        def body():
            wd = _ThreadWatchdog(1000.0, SET_ASYNC_EXC)
            wd._timer.cancel()
            wd.disarm()
            wd.fire()  # a timer racing past cancel(): must stand down
            return drain_pending_exceptions()

        assert run_in_thread(body) is None

    def test_stale_guard_cannot_poison_the_next_item(self):
        """Even a guard whose disarm never completed (the old failure
        mode: disarm interrupted by the delivery) goes stale the moment
        the thread arms its next guard — firing it must not inject into
        the item now running."""

        def body():
            stale = _ThreadWatchdog(1000.0, SET_ASYNC_EXC)
            stale._timer.cancel()
            # next item arms its own guard without stale being disarmed
            current = _ThreadWatchdog(1000.0, SET_ASYNC_EXC)
            current._timer.cancel()
            stale.fire()  # generation mismatch: must not inject
            leaked = drain_pending_exceptions()
            _disarm_quietly(current.disarm)
            return leaked

        assert run_in_thread(body) is None

    def test_generation_is_monotonic_per_thread(self):
        def body():
            tid = threading.get_ident()
            a = _ThreadWatchdog(1000.0, SET_ASYNC_EXC)
            a._timer.cancel()
            b = _ThreadWatchdog(1000.0, SET_ASYNC_EXC)
            b._timer.cancel()
            assert b._generation == a._generation + 1
            b.disarm()
            # disarm invalidates, it does not reset: a re-armed guard
            # can never collide with a stale timer's token
            assert _WATCHDOG_GENERATION[tid] > b._generation
            a.disarm()  # stale disarm must not clobber the counter
            return _WATCHDOG_GENERATION[tid] > b._generation

        assert run_in_thread(body) is True


class TestCompletionWindowHammer:
    def test_disarm_never_leaks_in_the_completion_window(self):
        """Hammer the fire-vs-disarm window: spin until the watchdog is
        (about to be) firing, then disarm immediately.  Whatever the
        interleaving — delivered during the spin, pending at disarm, or
        delivered *inside* disarm — nothing may escape disarm and
        nothing may surface in the next item."""

        def body():
            leaks = []
            for i in range(300):
                wd = _ThreadWatchdog(0.001, SET_ASYNC_EXC)
                try:
                    deadline = time.perf_counter() + 5.0
                    # interruptible spin right up to (and past) the fire
                    while not wd._fired and time.perf_counter() < deadline:
                        pass
                except ItemTimeout:
                    pass  # delivered mid-item: the legitimate outcome
                try:
                    wd.disarm()
                except ItemTimeout:
                    leaks.append(f"iteration {i}: escaped disarm")
                poisoned = drain_pending_exceptions()
                if poisoned:
                    leaks.append(f"iteration {i}: poisoned next item")
            return leaks

        assert run_in_thread(body, timeout=600) == []

    def test_escape_past_disarm_becomes_the_item_error(self, monkeypatch):
        """Delivery can land on the few bytecodes between execute_one's
        inner handlers and _disarm_quietly's guarded region; the outer
        boundary must turn that into the item's normal timeout failure
        instead of letting it abort the batch (or poison the worker)."""
        from repro.bench.generators import GeneratorConfig, random_control_network
        from repro.core import batch as batch_mod
        from repro.core.batch import execute_one
        from repro.core.config import FlowConfig

        real_disarm_quietly = batch_mod._disarm_quietly

        def late_delivery(disarm):
            real_disarm_quietly(disarm)  # guard properly stood down...
            raise ItemTimeout("fired in the completion window")

        monkeypatch.setattr(batch_mod, "_disarm_quietly", late_delivery)
        cfg = GeneratorConfig(n_inputs=10, n_outputs=4, n_gates=28, seed=3)
        net = random_control_network("tiny", cfg)
        result, error, runtime_s, cached = execute_one(
            "network", net, FlowConfig(n_vectors=256), timeout_s=600.0
        )
        assert result is None and not cached
        assert "ItemTimeout" in error and "completion window" in error
        assert runtime_s >= 0.0

    def test_disarm_quietly_absorbs_a_late_timeout(self):
        def body():
            calls = []

            def exploding_disarm():
                calls.append(True)
                raise ItemTimeout("fired in the completion window")

            _disarm_quietly(exploding_disarm)
            return len(calls)

        assert run_in_thread(body) == 1
