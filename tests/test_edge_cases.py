"""Edge cases and failure injection across modules.

These tests pin down behaviour at the boundaries: degenerate circuits
(constant outputs, wire-only outputs, empty covers), resource-limit
fallbacks, and inputs designed to stress unusual code paths.
"""

import pytest

from repro.errors import BddError, PowerError
from repro.bdd.builder import build_node_bdds
from repro.bdd.manager import ONE, ZERO, BddManager
from repro.core.flow import run_flow
from repro.core.min_area import minimize_area
from repro.core.optimizer import minimize_power
from repro.network.duplication import phase_transform
from repro.network.netlist import GateType, LogicNetwork
from repro.network.ops import cleanup, to_aoi
from repro.phase import Phase, PhaseAssignment
from repro.power.estimator import DominoPowerModel, PhaseEvaluator, estimate_power
from repro.power.simulator import simulate_power


def _const_output_net():
    net = LogicNetwork("const_po")
    net.add_input("a")
    net.add_gate("c1", GateType.CONST1, [])
    net.add_gate("g", GateType.AND, ["a", "a"])
    net.add_output("k", "c1")
    net.add_output("g")
    return net


def _wire_output_net():
    net = LogicNetwork("wire_po")
    net.add_input("a")
    net.add_input("b")
    net.add_gate("g", GateType.OR, ["a", "b"])
    net.add_output("w", "a")  # PO directly on a PI
    net.add_output("g")
    return net


class TestDegenerateOutputs:
    def test_constant_output_through_flow(self):
        result = run_flow(_const_output_net(), n_vectors=256, seed=0)
        assert result.ma.size >= 1

    def test_wire_output_through_flow(self):
        result = run_flow(_wire_output_net(), n_vectors=256, seed=0)
        assert result.ma.size >= 1

    def test_constant_output_estimator(self):
        net = _const_output_net()
        ev = PhaseEvaluator(net, method="bdd")
        for bits in range(4):
            a = PhaseAssignment.from_bits(net.output_names(), bits)
            b = ev.breakdown(a)
            direct = estimate_power(net, a, method="bdd")
            assert b.total == pytest.approx(direct.total)

    def test_wire_output_negative_phase_simulation(self):
        net = _wire_output_net()
        a = PhaseAssignment({"w": Phase.NEGATIVE, "g": Phase.POSITIVE})
        impl = phase_transform(net, a)
        sim = simulate_power(impl, n_vectors=512, seed=0)
        assert sim.energy_per_cycle > 0

    def test_all_constant_circuit(self):
        net = LogicNetwork("allconst")
        net.add_gate("c0", GateType.CONST0, [])
        net.add_output("z", "c0")
        ev = PhaseEvaluator(net, method="bdd")
        a = PhaseAssignment.all_positive(["z"])
        assert ev.power(a) == pytest.approx(0.0)
        result = minimize_power(ev, method="exhaustive")
        assert result.power <= ev.power(a) + 1e-12

    def test_output_listed_twice(self):
        net = LogicNetwork("dup_po")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g", GateType.AND, ["a", "b"])
        net.add_output("p1", "g")
        net.add_output("p2", "g")
        ev = PhaseEvaluator(net, method="bdd")
        # Same driver, conflicting phases: both polarities materialise.
        conflicting = PhaseAssignment({"p1": Phase.POSITIVE, "p2": Phase.NEGATIVE})
        aligned = PhaseAssignment.all_positive(["p1", "p2"])
        assert ev.area(conflicting) > ev.area(aligned)


class TestResourceLimits:
    def test_flow_with_monte_carlo_fallback(self, medium_random):
        # Force the BDD path to fail so the flow runs on MC estimates.
        result = run_flow(medium_random, n_vectors=512, seed=0, power_method="auto")
        assert result.probability_method in ("bdd", "monte-carlo")

    def test_evaluator_explicit_monte_carlo(self, small_random):
        ev = PhaseEvaluator(small_random, method="monte-carlo", n_vectors=2048)
        a = PhaseAssignment.all_positive(small_random.output_names())
        assert ev.power(a) > 0
        assert ev.probability_result.method == "monte-carlo"

    def test_estimator_mc_close_to_bdd(self, small_random):
        a = PhaseAssignment.random(small_random.output_names(), seed=3)
        bdd_ev = PhaseEvaluator(small_random, method="bdd")
        mc_ev = PhaseEvaluator(small_random, method="monte-carlo", n_vectors=30000)
        assert mc_ev.power(a) == pytest.approx(bdd_ev.power(a), rel=0.05)

    def test_bdd_manager_budget_exact_boundary(self):
        mgr = BddManager(["a", "b"], max_nodes=3)
        mgr.var("a")  # node 3 total (2 terminals + 1)
        with pytest.raises(BddError):
            mgr.var("b")
            mgr.apply_xor(mgr.var("a"), mgr.var("b"))

    def test_minimize_area_single_output(self):
        net = LogicNetwork("one")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g", GateType.NOR, ["a", "b"])
        net.add_output("g")
        aoi = cleanup(to_aoi(net))
        ev = PhaseEvaluator(aoi, method="bdd")
        result = minimize_area(ev)
        # NOR = NOT(OR): the negative phase absorbs the inverter.
        assert result.assignment["g"] is Phase.NEGATIVE
        assert result.area == 2  # one OR gate + one boundary inverter


class TestModelEdgeCases:
    def test_zero_capacitance_model(self, fig3_aoi):
        model = DominoPowerModel(gate_cap=0.0, inverter_cap=0.0)
        ev = PhaseEvaluator(fig3_aoi, model=model, method="bdd")
        a = PhaseAssignment.all_positive(fig3_aoi.output_names())
        assert ev.power(a) == pytest.approx(0.0)

    def test_extreme_input_probabilities(self, fig3_aoi):
        for p in (0.0, 1.0):
            ev = PhaseEvaluator(
                fig3_aoi, input_probs={pi: p for pi in fig3_aoi.inputs}, method="bdd"
            )
            a = PhaseAssignment.all_positive(fig3_aoi.output_names())
            b = ev.breakdown(a)
            # Deterministic inputs: static input inverters never toggle.
            assert b.input_inverters == pytest.approx(0.0)

    def test_simulator_single_vector(self, fig3_aoi):
        a = PhaseAssignment.all_positive(fig3_aoi.output_names())
        impl = phase_transform(fig3_aoi, a)
        sim = simulate_power(impl, n_vectors=1, seed=0)
        # One vector: no consecutive pairs, input inverter energy is 0.
        assert sim.input_inverter_energy == 0.0

    def test_estimate_power_without_boundary(self, fig3_aoi):
        model = DominoPowerModel(include_boundary_inverters=False)
        a = PhaseAssignment({"f": Phase.NEGATIVE, "g": Phase.NEGATIVE})
        direct = estimate_power(fig3_aoi, a, model=model, method="bdd")
        assert direct.input_inverters == 0.0
        assert direct.output_inverters == 0.0


class TestBddDegenerate:
    def test_constant_only_network(self):
        net = LogicNetwork("c")
        net.add_gate("c1", GateType.CONST1, [])
        net.add_output("k", "c1")
        bdds = build_node_bdds(net)
        assert bdds.bdd_of("c1") == ONE

    def test_single_variable_network(self):
        net = LogicNetwork("v")
        net.add_input("a")
        net.add_output("w", "a")
        bdds = build_node_bdds(net)
        assert bdds.probability("a", {"a": 0.3}) == pytest.approx(0.3)

    def test_empty_variable_order_manager(self):
        mgr = BddManager([])
        assert mgr.node_count == 0
        assert mgr.probability(ONE, {}) == 1.0
