"""Unit tests for the BLIF reader/writer."""

import pytest

from repro.errors import BlifError
from repro.network.blif import parse_blif, write_blif
from repro.network.netlist import GateType
from repro.network.ops import networks_equivalent, to_aoi

from helpers import all_input_vectors

SIMPLE = """
.model simple
.inputs a b c
.outputs f g
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.names a b g
0- 1
-0 1
.end
"""


class TestParseBasics:
    def test_model_name(self):
        net = parse_blif(SIMPLE)
        assert net.name == "simple"

    def test_interface(self):
        net = parse_blif(SIMPLE)
        assert net.inputs == ["a", "b", "c"]
        assert net.output_names() == ["f", "g"]

    def test_semantics(self):
        net = parse_blif(SIMPLE)
        for vec in all_input_vectors(net.inputs):
            out = net.evaluate_outputs(vec)
            assert out["f"] == ((vec["a"] and vec["b"]) or vec["c"])
            assert out["g"] == (not (vec["a"] and vec["b"]))

    def test_missing_model_raises(self):
        with pytest.raises(BlifError):
            parse_blif(".inputs a\n.outputs a\n.end\n")

    def test_comments_stripped(self):
        net = parse_blif(
            ".model c # trailing comment\n.inputs a\n.outputs f\n"
            "# full-line comment\n.names a f\n1 1\n.end\n"
        )
        assert net.evaluate_outputs({"a": True}) == {"f": True}

    def test_line_continuation(self):
        net = parse_blif(
            ".model c\n.inputs a b \\\nc\n.outputs f\n.names a b c f\n111 1\n.end\n"
        )
        assert net.inputs == ["a", "b", "c"]

    def test_undefined_output_raises(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.inputs a\n.outputs zz\n.end\n")

    def test_unsupported_construct_raises(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.subckt foo a=b\n.end\n")

    def test_unknown_directive_ignored(self):
        net = parse_blif(
            ".model m\n.inputs a\n.outputs f\n"
            ".default_input_arrival 0 0\n.names a f\n1 1\n.end\n"
        )
        assert net.output_names() == ["f"]


class TestCovers:
    def test_offset_cover(self):
        net = parse_blif(
            ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n"
        )
        assert net.evaluate_outputs({"a": True, "b": True}) == {"f": False}
        assert net.evaluate_outputs({"a": False, "b": True}) == {"f": True}

    def test_mixed_onset_offset_rows_rejected(self):
        with pytest.raises(BlifError):
            parse_blif(
                ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n"
            )

    def test_constant_one(self):
        net = parse_blif(".model m\n.outputs f\n.names f\n1\n.end\n")
        assert net.evaluate_outputs({}) == {"f": True}

    def test_constant_zero(self):
        net = parse_blif(".model m\n.outputs f\n.names f\n.end\n")
        assert net.evaluate_outputs({}) == {"f": False}

    def test_wide_cube_width_mismatch_rejected(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end\n")

    def test_inverter_cover(self):
        net = parse_blif(".model m\n.inputs a\n.outputs f\n.names a f\n0 1\n.end\n")
        assert net.evaluate_outputs({"a": False}) == {"f": True}

    def test_buffer_cover(self):
        net = parse_blif(".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n")
        assert net.evaluate_outputs({"a": True}) == {"f": True}

    def test_row_outside_names_rejected(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.inputs a\n11 1\n.end\n")


class TestLatches:
    def test_latch_parsed(self):
        net = parse_blif(
            ".model m\n.inputs a\n.outputs q\n.latch d q 0\n.names a q d\n11 1\n.end\n"
        )
        latch = net.nodes["q"]
        assert latch.gate_type is GateType.LATCH
        assert latch.fanins == ["d"]
        assert latch.init_value == 0

    def test_latch_with_type_and_clock(self):
        net = parse_blif(
            ".model m\n.inputs a clk\n.outputs q\n"
            ".latch d q re clk 1\n.names a d\n1 1\n.end\n"
        )
        assert net.nodes["q"].init_value == 1

    def test_latch_default_init_is_unknown(self):
        net = parse_blif(
            ".model m\n.inputs a\n.outputs q\n.latch d q\n.names a d\n1 1\n.end\n"
        )
        assert net.nodes["q"].init_value == 2

    def test_latch_missing_fields_rejected(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.latch d\n.end\n")


class TestRoundTrip:
    def test_simple_roundtrip(self):
        net = parse_blif(SIMPLE)
        text = write_blif(net)
        net2 = parse_blif(text)
        assert networks_equivalent(net, net2)

    def test_roundtrip_preserves_interface(self):
        net = parse_blif(SIMPLE)
        net2 = parse_blif(write_blif(net))
        assert net2.inputs == net.inputs
        assert net2.output_names() == net.output_names()

    def test_roundtrip_of_gate_network(self, fig3):
        text = write_blif(fig3)
        net2 = parse_blif(text)
        assert networks_equivalent(fig3, net2)

    def test_roundtrip_of_random_network(self, small_random):
        net2 = parse_blif(write_blif(small_random))
        assert networks_equivalent(small_random, net2)

    def test_roundtrip_with_latches(self, fig7):
        net2 = parse_blif(write_blif(fig7))
        assert len(net2.latches) == len(fig7.latches)
        # Combinational equivalence with latch outputs as free inputs:
        # compare next-state and output functions on a few vectors.
        for a in (False, True):
            for l0 in (False, True):
                vec = {"a": a, "b": True, "c": False}
                state = {"l0": l0, "l1": True}
                v1 = fig7.evaluate(vec, state)
                v2 = net2.evaluate(vec, state)
                assert v1["g1"] == v2["g1"]
                assert fig7.next_state(v1) == net2.next_state(v2)

    def test_po_alias_emitted(self):
        net = parse_blif(SIMPLE)
        net.outputs = [("renamed", "f"), ("g", "g")]
        net2 = parse_blif(write_blif(net))
        assert "renamed" in net2.output_names()


class TestErrorReporting:
    def test_line_number_in_message(self):
        try:
            parse_blif(".model m\n.inputs a\n.names a\nbogus row here\n.end\n")
        except BlifError as exc:
            assert "line" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected BlifError")
