"""Unit tests for repro.network.topo."""

import pytest

from repro.network.netlist import GateType, LogicNetwork
from repro.network.topo import (
    check_inverter_free,
    cone_overlap,
    count_literals,
    depth,
    fanout_cone_sizes,
    levels,
    output_cones,
    support,
    transitive_fanin,
    transitive_fanout,
)


class TestLevels:
    def test_sources_are_level_zero(self, simple_and_or):
        lv = levels(simple_and_or)
        assert lv["a"] == lv["b"] == lv["c"] == 0

    def test_gate_levels(self, simple_and_or):
        lv = levels(simple_and_or)
        assert lv["ab"] == 1
        assert lv["x"] == 2
        assert lv["y"] == 2

    def test_latches_are_level_zero(self, fig7):
        lv = levels(fig7)
        assert lv["l0"] == 0
        assert lv["l1"] == 0

    def test_depth(self, simple_and_or):
        assert depth(simple_and_or) == 2

    def test_depth_of_source_only_network(self):
        net = LogicNetwork()
        net.add_input("a")
        assert depth(net) == 0


class TestTransitiveFanin:
    def test_includes_root(self, simple_and_or):
        cone = transitive_fanin(simple_and_or, ["x"])
        assert "x" in cone

    def test_full_cone(self, simple_and_or):
        cone = transitive_fanin(simple_and_or, ["x"])
        assert cone == {"x", "ab", "a", "b", "c"}

    def test_without_sources(self, simple_and_or):
        cone = transitive_fanin(simple_and_or, ["x"], include_sources=False)
        assert cone == {"x", "ab"}

    def test_stops_at_latches(self, fig7):
        cone = transitive_fanin(fig7, ["g1"])
        assert "l1" in cone
        # The latch's own data cone (g2 etc.) is not entered.
        assert "g2" not in cone

    def test_multiple_roots(self, simple_and_or):
        cone = transitive_fanin(simple_and_or, ["x", "y"], include_sources=False)
        assert cone == {"x", "y", "ab"}


class TestTransitiveFanout:
    def test_fanout_of_input(self, simple_and_or):
        cone = transitive_fanout(simple_and_or, ["a"])
        assert cone == {"a", "ab", "x", "y"}

    def test_fanout_of_output_gate(self, simple_and_or):
        assert transitive_fanout(simple_and_or, ["x"]) == {"x"}

    def test_fanout_stops_at_latches(self, fig7):
        cone = transitive_fanout(fig7, ["g1"])
        # g1 feeds d0 which feeds latch l0; the latch is included as a
        # boundary but not walked through.
        assert "d0" in cone
        assert "l0" in cone
        assert "g2" not in cone


class TestOutputCones:
    def test_cones_keyed_by_po(self, simple_and_or):
        cones = output_cones(simple_and_or)
        assert set(cones) == {"x", "y"}
        assert cones["x"] == {"x", "ab"}
        assert cones["y"] == {"y", "ab"}

    def test_overlap_measure(self, simple_and_or):
        cones = output_cones(simple_and_or)
        o = cone_overlap(cones["x"], cones["y"])
        # |{ab}| / (2 + 2) = 0.25
        assert o == pytest.approx(0.25)

    def test_overlap_of_empty_cones(self):
        assert cone_overlap(set(), set()) == 0.0

    def test_overlap_symmetry(self, medium_random):
        cones = output_cones(medium_random)
        names = list(cones)
        for a in names:
            for b in names:
                assert cone_overlap(cones[a], cones[b]) == pytest.approx(
                    cone_overlap(cones[b], cones[a])
                )


class TestSupport:
    def test_support_order_follows_declaration(self, simple_and_or):
        assert support(simple_and_or, "x") == ["a", "b", "c"]
        assert support(simple_and_or, "y") == ["a", "b"]

    def test_support_includes_latches(self, fig7):
        s = support(fig7, "g1")
        assert "l1" in s


class TestFanoutConeSizes:
    def test_terminal_gate_size_one(self, simple_and_or):
        sizes = fanout_cone_sizes(simple_and_or)
        assert sizes["x"] == 1
        assert sizes["y"] == 1

    def test_shared_gate_counts_both_sinks(self, simple_and_or):
        sizes = fanout_cone_sizes(simple_and_or)
        assert sizes["ab"] == 3  # ab, x, y


class TestInverterFree:
    def test_offenders_found(self, simple_and_or):
        assert check_inverter_free(simple_and_or) == ["y"]

    def test_clean_network(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g", GateType.AND, ["a", "b"])
        net.add_output("g")
        assert check_inverter_free(net) == []


class TestLiterals:
    def test_count_literals(self, simple_and_or):
        # ab: 2, x: 2, y: 1
        assert count_literals(simple_and_or) == 5
