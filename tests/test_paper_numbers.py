"""Regression tests pinning the reproduction's headline numbers.

These tests encode the calibrated paper-versus-measured agreements
documented in EXPERIMENTS.md.  They are deliberately tolerant (seeds
are fixed, so drift signals a real behavioural change, not noise) and
they protect the calibration from silent regressions.
"""

import pytest

from repro.bench.mcnc import spec_by_name
from repro.core.flow import run_flow
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure9 import run_figure9
from repro.experiments.figure10 import run_figure10


class TestFigure5Numbers:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5(n_vectors=50000, seed=0)

    def test_reduction_matches_paper(self, result):
        # Paper: ~75%.  Ours: 75.7% analytically.
        assert result.switching_reduction_percent == pytest.approx(75.7, abs=1.0)

    def test_min_area_realisation_cells(self, result):
        assert result.min_area_row.area_cells == 4

    def test_min_power_domino_switching(self, result):
        # .01 + .19 + .0019 = .2019 (paper Figure 5 arithmetic).
        assert result.min_power_row.domino_switching == pytest.approx(0.2019, abs=1e-3)

    def test_min_area_domino_switching(self, result):
        # .99 + .81 + .9981 = 2.7981.
        assert result.min_area_row.domino_switching == pytest.approx(2.7981, abs=1e-3)


class TestFigure9Numbers:
    def test_exact_reproduction(self):
        result = run_figure9()
        assert result.supervertices == {"A+B+E": 3, "C+D": 2}
        assert result.exact_size == 2
        assert result.greedy_enhanced_size == 2


class TestFigure10Numbers:
    def test_example_counts(self):
        results = run_figure10()
        fig = next(r for r in results if r.circuit == "figure10")
        # Paper sketch: 7/11/9; our realisation of the sketch: 5/8/6.
        assert fig.node_counts["domino"] == 5
        assert fig.node_counts["topological"] == 8
        assert fig.node_counts["disturbed"] == 6


class TestFrg1Calibration:
    """frg1 is the paper's showcase circuit (3 POs, 8 assignments)."""

    @pytest.fixture(scope="class")
    def flow(self):
        return run_flow(spec_by_name("frg1").build(), n_vectors=4096, seed=0)

    def test_ma_size_matches_paper(self, flow):
        assert flow.ma.size == 98  # paper: 98

    def test_large_area_penalty(self, flow):
        # Paper: 48%; ours: ~38%.  The point: MP accepts a big area hit.
        assert flow.area_penalty_percent > 20.0

    def test_large_power_savings(self, flow):
        # Paper: 34.1%; ours: ~55%.  The point: despite only 8 possible
        # assignments the savings are large.
        assert flow.power_savings_percent > 30.0

    def test_ma_power_magnitude(self, flow):
        # Calibrated current scale puts MA power near the paper's 1.30.
        assert flow.ma.power_ma == pytest.approx(1.33, abs=0.3)


class TestApex7Calibration:
    @pytest.fixture(scope="class")
    def flow(self):
        return run_flow(spec_by_name("apex7").build(), n_vectors=4096, seed=0)

    def test_sizes_near_paper(self, flow):
        assert flow.ma.size == pytest.approx(394, abs=40)  # paper 394

    def test_savings_near_paper(self, flow):
        assert flow.power_savings_percent == pytest.approx(19.5, abs=8.0)

    def test_area_penalty_positive_and_moderate(self, flow):
        assert 0.0 < flow.area_penalty_percent < 20.0


class TestTimedFlowShape:
    def test_apex7_timed_row(self):
        flow = run_flow(
            spec_by_name("apex7").build(), timed=True, n_vectors=4096, seed=0
        )
        # Paper Table 2: 452 cells, 7.3% area, 18.3% savings.
        assert flow.ma.size == pytest.approx(452, abs=60)
        assert flow.power_savings_percent > 5.0
        assert flow.ma.resize is not None
        # Resizing must inflate the design relative to Table 1's 394.
        untimed = run_flow(spec_by_name("apex7").build(), n_vectors=512, seed=0)
        assert flow.ma.size >= untimed.ma.size
