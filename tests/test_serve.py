"""Tests for the async job-queue service: lifecycle (submit / poll /
result / cancel / shutdown), bounded-queue backpressure, store-backed
instant hits, event streams, and error isolation."""

import asyncio

import pytest

from repro.bench.generators import GeneratorConfig, random_control_network
from repro.bench.mcnc import spec_by_name
from repro.core.config import FlowConfig
from repro.errors import QueueFullError, ServeError, ServiceClosedError, UnknownJobError
from repro.serve import Service
from repro.store import ArtifactStore

FAST = FlowConfig(n_vectors=256)


def tiny_network(name="tiny", seed=3):
    cfg = GeneratorConfig(n_inputs=10, n_outputs=4, n_gates=28, seed=seed)
    return random_control_network(name, cfg)


def run(coro):
    """Drive one async test body to completion."""
    return asyncio.run(coro)


class TestLifecycle:
    def test_submit_runs_and_completes(self):
        async def body():
            async with Service(FAST, jobs=1, queue_size=4) as svc:
                job_id = await svc.submit(tiny_network())
                job = await svc.result(job_id, timeout=120)
                assert job.ok and job.state == "done" and not job.cached
                assert job.result.row()["ckt"] == "tiny"
                assert job.runtime_s > 0
                snap = svc.status(job_id)
                assert snap["state"] == "done" and "row" in snap
            assert svc.state == "closed"

        run(body())

    def test_events_trace_the_lifecycle(self):
        async def body():
            async with Service(FAST, jobs=1, queue_size=4) as svc:
                job_id = await svc.submit(tiny_network())
                await svc.result(job_id, timeout=120)
                events = [e async for e in svc.events(job_id)]
                assert [e["state"] for e in events] == ["queued", "running", "done"]
                assert [e["seq"] for e in events] == [0, 1, 2]
                assert "row" in events[-1]

        run(body())

    def test_failed_job_carries_traceback(self, tmp_path):
        async def body():
            async with Service(FAST, jobs=1, queue_size=4) as svc:
                job_id = await svc.submit(str(tmp_path / "missing.blif"))
                job = await svc.result(job_id, timeout=120)
                assert job.state == "failed" and not job.ok
                assert "missing.blif" in job.error
                assert "error" in svc.status(job_id)

        run(body())

    def test_per_job_config_override(self):
        async def body():
            async with Service(FAST, jobs=1, queue_size=4) as svc:
                job_id = await svc.submit(
                    tiny_network(), FAST.replace(n_vectors=128)
                )
                job = await svc.result(job_id, timeout=120)
                assert job.ok and job.config.n_vectors == 128

        run(body())

    def test_submit_after_shutdown_rejected(self):
        async def body():
            svc = Service(FAST, jobs=1, queue_size=2)
            await svc.start()
            await svc.shutdown()
            assert svc.state == "closed" and svc._pool is None
            with pytest.raises(ServiceClosedError):
                await svc.submit(tiny_network())

        run(body())

    def test_unknown_job_id(self):
        async def body():
            async with Service(FAST, jobs=1, queue_size=2) as svc:
                with pytest.raises(UnknownJobError):
                    svc.status("job-999")
                with pytest.raises(UnknownJobError):
                    await svc.cancel("job-999")

        run(body())

    def test_bad_parameters_rejected(self):
        with pytest.raises(ServeError, match="queue_size"):
            Service(FAST, queue_size=0)
        with pytest.raises(ServeError, match="jobs"):
            Service(FAST, jobs=0)
        with pytest.raises(ServeError, match="timeout_s"):
            Service(FAST, timeout_s=0)


class TestBackpressure:
    def test_queue_full_rejects_submission(self):
        async def body():
            # a submission yields no scheduling point before the queue
            # insert, so with queue bound 1 the first fills the queue
            # before the dispatcher can drain it and the second bounces
            async with Service(FAST, jobs=1, queue_size=1) as svc:
                first = await svc.submit(tiny_network("a", 3))
                with pytest.raises(QueueFullError):
                    await svc.submit(tiny_network("b", 5))
                # a rejected submission leaves no job record behind
                assert len(svc.jobs_snapshot()) == 1
                # the accepted job still drains to completion, and the
                # freed slot reopens intake
                assert (await svc.result(first, timeout=240)).ok
                second = await svc.submit(tiny_network("b", 5))
                assert (await svc.result(second, timeout=240)).ok

        run(body())

    def test_queue_depth_reported(self):
        async def body():
            async with Service(FAST, jobs=1, queue_size=8) as svc:
                await svc.submit(tiny_network("a", 3))
                await svc.submit(tiny_network("b", 5))
                stats = svc.stats()
                assert stats["state"] == "running"
                assert stats["queue_depth"] >= 1  # dispatcher holds ≤ 1

        run(body())


class TestCancel:
    def test_cancel_queued_job_never_runs(self):
        async def body():
            async with Service(FAST, jobs=1, queue_size=8) as svc:
                running = await svc.submit(tiny_network("a", 3))
                queued = await svc.submit(tiny_network("b", 5))
                assert await svc.cancel(queued) is True
                job = await svc.result(queued, timeout=10)
                assert job.state == "cancelled"
                assert job.started_at is None and job.result is None
                # the in-flight job is unaffected
                assert (await svc.result(running, timeout=240)).ok

        run(body())

    def test_cancel_finished_job_returns_false(self):
        async def body():
            async with Service(FAST, jobs=1, queue_size=4) as svc:
                job_id = await svc.submit(tiny_network())
                job = await svc.result(job_id, timeout=120)
                assert job.ok
                assert await svc.cancel(job_id) is False
                assert job.state == "done"  # terminal state is immutable

        run(body())

    def test_cancel_running_job_is_refused_and_result_survives(self):
        """Regression: cancelling a job whose worker already started
        used to ``future.cancel()`` the (still pending) asyncio future,
        which "succeeds" even though the pool work is executing — the
        client was told *cancelled* while the worker kept running.  A
        started job must report ``False`` and keep its real outcome."""

        async def body():
            # big enough that it is still running when the cancel lands
            cfg = GeneratorConfig(
                n_inputs=16, n_outputs=10, n_gates=150, seed=21
            )
            slow = random_control_network("slowjob", cfg)
            async with Service(FAST, jobs=1, queue_size=4) as svc:
                job_id = await svc.submit(slow)
                for _ in range(600):  # wait for the dispatcher to start it
                    if svc.job(job_id).state != "queued":
                        break
                    await asyncio.sleep(0.01)
                assert svc.job(job_id).state == "running"
                assert await svc.cancel(job_id) is False
                job = await svc.result(job_id, timeout=240)
                assert job.state == "done" and job.ok  # nothing was lost

        run(body())

    def test_terminal_transitions_are_one_way(self):
        """A worker completing after a cancel (or any second transition)
        must never overwrite the first terminal state."""

        async def body():
            async with Service(FAST, jobs=1, queue_size=4) as svc:
                job_id = await svc.submit(tiny_network())
                job = await svc.result(job_id, timeout=120)
                assert job.state == "done"
                finished_at = job.finished_at
                await svc._finish(job, "cancelled")
                assert job.state == "done"
                assert job.finished_at == finished_at

        run(body())


class TestShutdown:
    def test_drain_completes_queued_work(self):
        async def body():
            svc = Service(FAST, jobs=2, queue_size=8)
            await svc.start()
            ids = [
                await svc.submit(tiny_network(name, seed))
                for name, seed in (("a", 3), ("b", 5), ("c", 7))
            ]
            await svc.shutdown(drain=True)
            assert svc.state == "closed" and svc._pool is None
            assert all(svc.job(i).ok for i in ids)

        run(body())

    def test_abort_cancels_queued_work(self):
        async def body():
            svc = Service(FAST, jobs=1, queue_size=8)
            await svc.start()
            ids = [
                await svc.submit(tiny_network(name, seed))
                for name, seed in (("a", 3), ("b", 5), ("c", 7))
            ]
            await svc.shutdown(drain=False)
            assert svc.state == "closed" and svc._pool is None
            states = [svc.job(i).state for i in ids]
            # whatever was already in flight finished; the rest were
            # cancelled without running
            assert all(s in ("done", "cancelled") for s in states)
            assert "cancelled" in states

        run(body())

    def test_shutdown_is_idempotent(self):
        async def body():
            svc = Service(FAST, jobs=1, queue_size=2)
            await svc.start()
            await svc.shutdown()
            await svc.shutdown()
            assert svc.state == "closed"

        run(body())


class TestStoreDedup:
    def test_repeat_submission_is_instant_cache_hit(self, tmp_path):
        async def body():
            store = ArtifactStore(tmp_path / "store")
            net = tiny_network()
            async with Service(FAST, jobs=1, queue_size=4, store=store) as svc:
                cold = await svc.result(await svc.submit(net), timeout=240)
                assert cold.ok and not cold.cached
                warm = await svc.result(await svc.submit(net), timeout=30)
                assert warm.ok and warm.cached
                # never queued, never ran: zero synthesis stages executed
                assert warm.started_at is None and warm.runtime_s == 0.0
                events = [e async for e in svc.events(warm.job_id)]
                assert [e["state"] for e in events] == ["done"]
                assert store.hits.get("flow", 0) >= 1
                # rows are bit-identical either way
                assert warm.result.row() == cold.result.row()

        run(body())

    def test_different_config_misses_the_cache(self, tmp_path):
        async def body():
            store = ArtifactStore(tmp_path / "store")
            net = tiny_network()
            async with Service(FAST, jobs=1, queue_size=4, store=store) as svc:
                await svc.result(await svc.submit(net), timeout=240)
                other = await svc.result(
                    await svc.submit(net, FAST.replace(n_vectors=128)), timeout=240
                )
                assert other.ok and not other.cached

        run(body())

    def test_spec_submissions_dedup_too(self, tmp_path):
        async def body():
            store = ArtifactStore(tmp_path / "store")
            spec = spec_by_name("frg1")
            async with Service(FAST, jobs=1, queue_size=4, store=store) as svc:
                cold = await svc.result(await svc.submit(spec), timeout=240)
                warm = await svc.result(await svc.submit(spec), timeout=30)
                assert cold.ok and not cold.cached
                assert warm.ok and warm.cached and warm.started_at is None

        run(body())


class TestProgress:
    def test_progress_fires_and_is_isolated(self):
        seen = []

        def progress(done, total, item):
            seen.append((done, item.name, item.ok, item.cached))
            raise RuntimeError("bad subscriber")  # must not hurt the service

        async def body():
            async with Service(
                FAST, jobs=1, queue_size=4, progress=progress
            ) as svc:
                job = await svc.result(await svc.submit(tiny_network()), timeout=240)
                assert job.ok

        run(body())
        assert seen == [(1, "tiny", True, False)]


class TestReviewRegressions:
    """Regression coverage for review findings: bad timeout_s values,
    bounded finished-job history, and post-shutdown intake."""

    def test_nonpositive_submit_timeout_rejected(self):
        async def body():
            async with Service(FAST, jobs=1, queue_size=2) as svc:
                with pytest.raises(ServeError, match="timeout_s"):
                    await svc.submit(tiny_network(), timeout_s=0)
                with pytest.raises(ServeError, match="timeout_s"):
                    await svc.submit(tiny_network(), timeout_s=-5)
                assert svc.jobs_snapshot() == []  # nothing leaked

        run(body())

    def test_finished_history_is_bounded(self, tmp_path):
        async def body():
            store = ArtifactStore(tmp_path / "store")
            net = tiny_network()
            async with Service(
                FAST, jobs=1, queue_size=4, store=store, max_history=2
            ) as svc:
                first = await svc.submit(net)  # cold: runs once
                await svc.result(first, timeout=240)
                # instant cache hits: each finishes immediately
                later = [await svc.submit(net) for _ in range(3)]
                assert all(svc.job(i).cached for i in later[-2:])
                # only max_history finished jobs retained; oldest evicted
                assert len(svc.jobs_snapshot()) == 2
                with pytest.raises(UnknownJobError):
                    svc.status(first)

        run(body())

    def test_bad_max_history_rejected(self):
        with pytest.raises(ServeError, match="max_history"):
            Service(FAST, max_history=0)
