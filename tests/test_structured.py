"""Tests for the structured benchmark circuits."""

import itertools

import pytest

from repro.errors import ReproError
from repro.bench.structured import (
    STRUCTURED_FAMILIES,
    decoder,
    equality_comparator,
    mux_tree,
    or_tree,
    parity_tree,
    priority_encoder,
)
from repro.core.flow import run_flow
from repro.network.ops import cleanup, to_aoi

from helpers import all_input_vectors


class TestDecoder:
    def test_one_hot_semantics(self):
        net = decoder(3)
        for vec in all_input_vectors(net.inputs):
            out = net.evaluate_outputs(vec)
            k = sum((1 << i) for i, s in enumerate(net.inputs) if vec[s])
            assert out[f"out{k}"] is True
            assert sum(out.values()) == 1  # exactly one line high

    def test_interface(self):
        net = decoder(4)
        assert len(net.inputs) == 4
        assert len(net.outputs) == 16

    def test_bad_width(self):
        with pytest.raises(ReproError):
            decoder(0)
        with pytest.raises(ReproError):
            decoder(9)


class TestParityTree:
    @pytest.mark.parametrize("n", [2, 3, 7, 8])
    def test_parity_semantics(self, n):
        net = parity_tree(n)
        for vec in all_input_vectors(net.inputs):
            expected = sum(vec.values()) % 2 == 1
            assert net.evaluate_outputs(vec)["parity"] is expected

    def test_bad_width(self):
        with pytest.raises(ReproError):
            parity_tree(1)


class TestOrTree:
    @pytest.mark.parametrize("n,fanin", [(5, 2), (9, 4), (24, 4)])
    def test_or_semantics(self, n, fanin):
        net = or_tree(n, fanin=fanin)
        zero = {pi: False for pi in net.inputs}
        assert net.evaluate_outputs(zero)["any"] is False
        for pi in list(net.inputs)[:3]:
            vec = dict(zero)
            vec[pi] = True
            assert net.evaluate_outputs(vec)["any"] is True

    def test_fanin_respected(self):
        net = or_tree(16, fanin=4)
        for g in net.gates:
            assert len(g.fanins) <= 4


class TestPriorityEncoder:
    def test_highest_priority_wins(self):
        net = priority_encoder(4)
        for vec in all_input_vectors(net.inputs):
            out = net.evaluate_outputs(vec)
            granted = [k for k in range(4) if out[f"grant{k}"]]
            requested = [k for k in range(4) if vec[f"req{k}"]]
            if requested:
                assert granted == [min(requested)]
            else:
                assert granted == []


class TestComparator:
    @pytest.mark.parametrize("width", [1, 3, 5])
    def test_equality_semantics(self, width):
        net = equality_comparator(width)
        import random

        rng = random.Random(0)
        for _ in range(50):
            a = [rng.random() < 0.5 for _ in range(width)]
            b = list(a) if rng.random() < 0.5 else [rng.random() < 0.5 for _ in range(width)]
            vec = {}
            for i in range(width):
                vec[f"a{i}"] = a[i]
                vec[f"b{i}"] = b[i]
            assert net.evaluate_outputs(vec)["eq"] is (a == b)


class TestMuxTree:
    def test_selection_semantics(self):
        net = mux_tree(8)
        import random

        rng = random.Random(1)
        for _ in range(40):
            vec = {pi: rng.random() < 0.5 for pi in net.inputs}
            sel = sum((1 << j) for j in range(3) if vec[f"s{j}"])
            assert net.evaluate_outputs(vec)["y"] == vec[f"d{sel}"]

    def test_power_of_two_required(self):
        with pytest.raises(ReproError):
            mux_tree(6)


class TestStructuredThroughFlow:
    """The full flow must handle every structured family."""

    @pytest.mark.parametrize("family", sorted(STRUCTURED_FAMILIES))
    def test_flow_runs(self, family):
        net = STRUCTURED_FAMILIES[family]()
        result = run_flow(net, n_vectors=512, seed=0)
        assert result.ma.size > 0
        assert result.mp.estimated_power <= result.ma.estimated_power + 1e-9

    def test_or_tree_gains_more_than_decoder(self):
        """The physics: OR-dominant logic benefits from phase flips,
        AND-dominant (decoder) logic does not."""
        dec = run_flow(decoder(4), n_vectors=2048, seed=0)
        ort = run_flow(or_tree(24), n_vectors=2048, seed=0)
        assert ort.power_savings_percent >= dec.power_savings_percent

    def test_parity_is_phase_neutral(self):
        """XOR logic pins probabilities to 0.5: savings near zero."""
        result = run_flow(parity_tree(16), n_vectors=2048, seed=0)
        assert abs(result.power_savings_percent) < 10.0
